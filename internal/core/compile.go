// Compiled symbolic execution (docs/compile.md).
//
// The interpreted step pays, per instruction: a decode (amortized by the
// translation cache), a disassembly string build, and an AST walk of the
// RTL semantics with per-node type switches. All of it is per-address
// constant while the instruction bytes come from the unmodified image,
// so the engine keeps a shared per-address cache of compiled entries —
// decoded instruction, rtl.Compiled closure chain, disassembly and
// fall-through continuation — and, above it, superblocks: maximal runs
// of straightline entries (no pc write, no control event) executed
// back-to-back inside one step call.
//
// The cache is shared by every worker of a parallel run: compiled
// closures capture only immutable ADL data (resolved registers, widths,
// immediates), never a builder, so one unit serves any worker's builder
// at execution time.
//
// Self-modifying code keeps the same guard as the translation cache:
// any state whose memory overlay touches an instruction's fetch window
// (mem.writtenRange) takes the interpreted path for that instruction,
// and superblock execution re-checks the window before every chained
// entry. The shared cache itself is only ever populated from unmodified
// image bytes, so it needs no invalidation.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bv"
	"repro/internal/cover"
	"repro/internal/decoder"
	"repro/internal/faultinject"
	"repro/internal/profile"
	"repro/internal/rtl"
)

// maxSuperblock bounds the chain length of one engine superblock.
const maxSuperblock = 64

// compEntry is one compiled instruction: everything the step loop would
// otherwise recompute per execution, resolved once per address.
type compEntry struct {
	dec    decoder.Decoded
	unit   *rtl.Compiled
	disasm string
	cont   uint64 // fall-through continuation (width-truncated)
}

// compBlock is a superblock: the straightline prefix starting at its
// key address. An empty block records a non-straightline head.
type compBlock struct {
	units []*compEntry
	prof  []profile.BlockUnit
	// shared is true for cache-resident blocks, whose pointer is a
	// stable profiling key; truncated (self-modified) blocks are rebuilt
	// per call and must record per unit instead.
	shared bool
}

// compileCache is the engine-wide compiled-code store, shared across
// workers. Counters are atomic; the maps are sync.Maps because workers
// populate them concurrently (a racing double-compile is resolved by
// LoadOrStore and only wastes the losing compile).
type compileCache struct {
	units  sync.Map // uint64 -> *compEntry
	blocks sync.Map // uint64 -> *compBlock

	unitCount  atomic.Int64
	blockCount atomic.Int64
	blockHits  atomic.Int64
	blockInsns atomic.Int64
}

func newCompileCache() *compileCache { return &compileCache{} }

// compileOn reports whether this run executes through compiled units.
// NoTranslationCache also disables compilation: the compile cache is a
// translation cache, so the ablation must cover both.
func (e *Engine) compileOn() bool {
	return !e.Opts.NoCompile && !e.Opts.NoTranslationCache
}

// entryAt returns the compiled entry for the instruction at pc,
// compiling it on first use anywhere in the run. The caller must have
// established that st's overlay does not touch the fetch window, so the
// bytes — and therefore the cached entry — come from the shared image.
func (e *Engine) entryAt(st *State, pc uint64) (*compEntry, error) {
	if ent, ok := e.compiled.units.Load(pc); ok {
		return ent.(*compEntry), nil
	}
	maxLen := e.Arch.MaxInsnBytes()
	buf, ok := st.mem.ConcreteFetch(pc, maxLen)
	if !ok {
		// Mirror the interpreted decode's fetch-failure message so
		// compiled and interpreted runs fault identically.
		return nil, fmt.Errorf("symbolic instruction bytes at %#x", pc)
	}
	e.report.Stats.DecodeCalls++
	e.m.decodeCalls.Inc()
	var t0 time.Time
	if e.m.on {
		t0 = time.Now()
	}
	d, err := e.Dec.Decode(buf)
	if e.m.on {
		e.m.decodeSeconds.ObserveSince(t0)
	}
	if err != nil {
		return nil, err
	}
	ent := &compEntry{
		dec:    d,
		unit:   rtl.Compile(d.Insn, d.Ops, e.Arch.PC),
		disasm: decoder.Disasm(d, pc),
		cont:   bv.Trunc(pc+uint64(d.Len), e.Arch.Bits),
	}
	if prev, loaded := e.compiled.units.LoadOrStore(pc, ent); loaded {
		return prev.(*compEntry), nil
	}
	e.compiled.unitCount.Add(1)
	e.m.compiledUnits.Inc()
	e.prof.CompileMiss(pc)
	return ent, nil
}

// blockFor returns the superblock headed at st.PC, building and caching
// it on first use. Blocks truncated by st's own memory writes are not
// cached (they would shorten the block for every other state).
func (e *Engine) blockFor(st *State) *compBlock {
	pc := st.PC
	if blk, ok := e.compiled.blocks.Load(pc); ok {
		return blk.(*compBlock)
	}
	blk := &compBlock{}
	cur := pc
	maxLen := e.Arch.MaxInsnBytes()
	truncated := false
	for len(blk.units) < maxSuperblock {
		if cur != pc && st.mem.writtenRange(cur, maxLen) {
			truncated = true
			break
		}
		ent, err := e.entryAt(st, cur)
		if err != nil {
			break // the single-step path surfaces decode errors
		}
		if !ent.unit.Straightline() {
			break
		}
		blk.units = append(blk.units, ent)
		blk.prof = append(blk.prof, profile.BlockUnit{
			PC: cur, Mnemonic: ent.unit.Mnemonic, Format: ent.unit.Format, Cont: ent.cont,
		})
		cur = ent.cont
	}
	if !truncated {
		blk.shared = true
		e.compiled.blocks.Store(pc, blk)
		if len(blk.units) > 0 {
			e.compiled.blockCount.Add(1)
			e.m.superblockBuilds.Inc()
			if e.m.on {
				e.m.superblockLen.Observe(float64(len(blk.units)))
			}
		}
	}
	return blk
}

// stepCompiled is the compiled replacement for the interpreted step
// body. The caller has verified that st.PC's fetch window is clean.
func (e *Engine) stepCompiled(st *State) ([]*State, error) {
	// Opportunistic merging needs lockstep stepping — both branch sides
	// live at the join pc at the same time — so MergeStates runs
	// compiled entries one per step call and skips superblock chaining.
	if !e.Opts.MergeStates {
		blk := e.blockFor(st)
		if len(blk.units) > 0 {
			return e.runBlock(st, blk)
		}
	}
	ent, err := e.entryAt(st, st.PC)
	if err != nil {
		st.Fault = err.Error()
		return []*State{st.done(StatusDecode)}, nil
	}
	return e.execEntry(st, ent)
}

// runBlock executes the superblock's straightline prefix on st inside
// one step call. Straightline units cannot fork, halt or branch, so the
// state threads through unchanged; the block's terminator (and anything
// past a self-modified window) runs via the next step call. Every
// per-instruction obligation of the interpreted step — visit counts,
// coverage hits, injection sites, the MaxSteps check — fires per unit,
// so a compiled run is observationally per-instruction.
func (e *Engine) runBlock(st *State, blk *compBlock) ([]*State, error) {
	e.compiled.blockHits.Add(1)
	e.m.superblockHits.Inc()
	maxLen := e.Arch.MaxInsnBytes()
	pcReg := e.Arch.PC
	ec := &execCtx{e: e}
	n := int64(0)
	defer func() {
		e.compiled.blockInsns.Add(n)
		e.m.superblockInsns.Add(n)
		if blk.shared {
			e.prof.ExecBlock(blk, blk.prof, int(n))
		}
	}()
	for i, ent := range blk.units {
		pc := st.PC
		if i > 0 {
			// safeStep fired the per-step site for the first unit; keep
			// the fires-per-instruction contract for the rest.
			e.inject.Fire(faultinject.SiteSymStep)
			if st.mem.writtenRange(pc, maxLen) {
				break // self-modified under this state: re-enter via step
			}
		}
		e.recordVisit(pc)
		e.report.Stats.Instructions++
		e.m.instructions.Inc()
		e.cov.Hit(cover.LSym, ent.dec.Insn)
		if e.prof != nil && !blk.shared {
			e.prof.Exec(pc, ent.unit.Mnemonic, ent.unit.Format)
			e.prof.Edge(pc, ent.cont)
		}
		st.Steps++
		n++
		// Translate-layer parity: the interpreter's SymEval.Exec fires
		// the injection site and coverage hit once per instruction.
		e.inject.Fire(faultinject.SiteTranslate)
		e.cov.Hit(cover.LTranslate, ent.dec.Insn)
		st.SetReg(pcReg, e.B.Const(pcReg.Width, ent.cont))
		ec.st, ec.insAddr, ec.disasm = st, pc, ent.disasm
		ec.infeasible, ec.err = false, nil
		events := ent.unit.ExecSym(e.B, ec, &e.scratch)
		if ec.err != nil {
			return nil, ec.err
		}
		if ec.infeasible {
			return []*State{st.done(StatusKilled)}, nil
		}
		if len(events) > 0 {
			// Straightline units raise only division observations
			// (HasCtl excludes trap/halt/fault), which never split.
			if _, _, err := e.handleEvents(st, events, pc, ent.disasm); err != nil {
				return nil, err
			}
		}
		if st.Steps >= e.Opts.MaxSteps {
			return []*State{st.done(StatusSteps)}, nil
		}
		// The interpreted resolvePC records the fall-through branch
		// outcome for the sym coverage layer.
		e.cov.Branch(cover.LSym, ent.dec.Insn, false)
		st.PC = ent.cont
	}
	return []*State{st}, nil
}

// execEntry executes one compiled instruction with full control-flow
// handling: the interpreted step body with the decode, disassembly and
// continuation arithmetic replaced by the cached entry.
func (e *Engine) execEntry(st *State, ent *compEntry) ([]*State, error) {
	insAddr := st.PC
	e.recordVisit(insAddr)
	e.report.Stats.Instructions++
	e.m.instructions.Inc()
	e.cov.Hit(cover.LSym, ent.dec.Insn)
	if e.prof != nil {
		e.prof.Exec(insAddr, ent.unit.Mnemonic, ent.unit.Format)
	}
	st.Steps++
	e.inject.Fire(faultinject.SiteTranslate)
	e.cov.Hit(cover.LTranslate, ent.dec.Insn)

	pcReg := e.Arch.PC
	st.SetReg(pcReg, e.B.Const(pcReg.Width, ent.cont))

	ec := &execCtx{e: e, st: st, insAddr: insAddr, disasm: ent.disasm}
	events := ent.unit.ExecSym(e.B, ec, &e.scratch)
	if ec.err != nil {
		return nil, ec.err
	}
	if ec.infeasible {
		return []*State{st.done(StatusKilled)}, nil
	}
	done, continuing, err := e.handleEvents(st, events, insAddr, ent.disasm)
	if err != nil {
		return nil, err
	}
	out := done
	for _, c := range continuing {
		if c.Steps >= e.Opts.MaxSteps {
			out = append(out, c.done(StatusSteps))
			continue
		}
		next, err := e.resolvePC(c, ent.dec, insAddr, ent.disasm)
		if err != nil {
			return nil, err
		}
		out = append(out, next...)
	}
	return out, nil
}

// snapshotCompileStats copies the shared cache counters into the
// report's deterministic stats block (end of run, both serial and
// parallel).
func (e *Engine) snapshotCompileStats() {
	e.report.Stats.CompiledUnits = e.compiled.unitCount.Load()
	e.report.Stats.Superblocks = e.compiled.blockCount.Load()
	e.report.Stats.SuperblockHits = e.compiled.blockHits.Load()
	e.report.Stats.SuperblockInsns = e.compiled.blockInsns.Load()
}

// Parallel path exploration: a pool of workers drains a shared,
// strategy-aware frontier of symbolic states. Expression builders and
// solvers are not goroutine-safe, so every worker is a full sub-Engine
// owning its own Builder, Solver and decode cache; read-only machinery
// (architecture model, decoder, program, layout, checkers) and the
// concurrency-safe tables (solver-query cache, bug dedup, visit counts)
// are shared. A worker that claims a state forked on another worker's
// builder re-homes it with a term-transfer pass (expr.Transfer) before
// executing it.
//
// Determinism: the set of paths explored is a property of the program,
// not the schedule, as long as no budget truncates the search. Workers
// collect paths and bugs privately; the coordinator merges them in a
// canonical order — paths by their builder-independent signature (a hash
// chain over the appended path conditions), bugs by (PC, Check, Msg) — so
// the merged report is bit-stable across schedules and worker counts.
// Schedule-dependent by nature (and documented as such in docs/engine.md):
// Bug.Model/Input/PathID/FoundAt, per-worker stats, MaxLiveSet and the
// cache hit/miss split.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/decoder"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/smt"
)

// dedupKey identifies a finding for global deduplication.
type dedupKey struct {
	check string
	pc    uint64
	msg   string
}

const dedupShards = 16

// bugDedup is a sharded concurrent set of findings already reported.
// Sharded sync.Maps keep the fast path (repeat findings at a hot pc)
// mutex-free.
type bugDedup struct {
	shards [dedupShards]sync.Map
}

func newBugDedup() *bugDedup { return &bugDedup{} }

// first reports whether k is new, claiming it atomically.
func (d *bugDedup) first(k dedupKey) bool {
	s := &d.shards[k.pc%dedupShards]
	_, loaded := s.LoadOrStore(k, struct{}{})
	return !loaded
}

const visitShards = 64

// visitTable is the shared per-pc execution counter of a parallel run
// (coverage strategy input and final Coverage stat).
type visitTable struct {
	shards [visitShards]visitShard
}

type visitShard struct {
	mu sync.Mutex
	m  map[uint64]int64
}

func newVisitTable() *visitTable {
	t := &visitTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]int64)
	}
	return t
}

func (t *visitTable) shard(pc uint64) *visitShard {
	return &t.shards[expr.MixHash(0, pc)%visitShards]
}

// inc bumps pc's execution count, reporting whether the address was new
// (first execution anywhere in the run).
func (t *visitTable) inc(pc uint64) bool {
	s := t.shard(pc)
	s.mu.Lock()
	s.m[pc]++
	first := s.m[pc] == 1
	s.mu.Unlock()
	return first
}

func (t *visitTable) get(pc uint64) int64 {
	s := t.shard(pc)
	s.mu.Lock()
	v := s.m[pc]
	s.mu.Unlock()
	return v
}

// distinct counts the executed instruction addresses.
func (t *visitTable) distinct() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// frontier is the shared work queue of live states. pop blocks until work
// arrives, every worker is idle (global termination), or the run is
// stopped. The exploration strategy picks which state a pop returns; with
// several workers the strategy is necessarily approximate, since each
// worker also keeps one continuing child inline for builder locality.
type frontier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	items    []*State
	waiting  int
	workers  int
	closed   bool
	strategy Strategy
	rng      *rand.Rand
	vt       *visitTable
	maxLen   int
	maxLive  int // MaxStates budget; pushes beyond it are killed
	killed   int64

	// Telemetry (nil-safe): queue depth gauge, kill counter, tracer and
	// profiler. The profiler is the run-level aggregate (not a worker
	// shard) because pushes race across workers; Profiler.Kill locks.
	depth     *obs.Gauge
	depthMax  *obs.Gauge
	killedCtr *obs.Counter
	tr        *obs.Tracer
	prof      *profile.Profiler
	prog      *Progress
}

func newFrontier(workers int, o Options, vt *visitTable, m engineMetrics, tr *obs.Tracer, prof *profile.Profiler) *frontier {
	f := &frontier{
		workers:   workers,
		strategy:  o.Strategy,
		rng:       rand.New(rand.NewSource(o.Seed + 1)),
		vt:        vt,
		maxLive:   o.MaxStates,
		depth:     m.frontierDepth,
		depthMax:  m.liveMax,
		killedCtr: m.statesKilled,
		tr:        tr,
		prof:      prof,
		prog:      o.Progress,
	}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// push offers states to the pool. States beyond the live budget — or
// arriving after the run stopped — are dropped and counted as killed.
func (f *frontier) push(sts ...*State) {
	f.mu.Lock()
	for _, st := range sts {
		if f.closed || len(f.items) >= f.maxLive {
			f.killed++
			f.killedCtr.Inc()
			f.prof.Kill(st.PC)
			if f.tr != nil {
				reason := "max-states"
				if f.closed {
					reason = "run-stopped"
				}
				f.tr.Event("kill", -1, st.ID, st.PC, reason)
			}
			continue
		}
		f.items = append(f.items, st)
		f.cond.Signal()
	}
	if len(f.items) > f.maxLen {
		f.maxLen = len(f.items)
	}
	f.depth.Set(int64(len(f.items)))
	f.depthMax.Max(int64(f.maxLen))
	f.prog.setFrontier(int64(len(f.items)))
	f.mu.Unlock()
}

// pop removes the next state per the strategy, blocking while the queue
// is empty but some worker may still produce work. home is the popping
// worker's builder, used for transfer-avoiding affinity. ok is false when
// the exploration is over (all workers idle, or the run was stopped).
func (f *frontier) pop(home *expr.Builder) (st *State, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.closed {
			return nil, false
		}
		if len(f.items) > 0 {
			return f.take(home), true
		}
		f.waiting++
		if f.waiting == f.workers {
			// Global quiescence: nobody holds a state, nothing queued.
			f.closed = true
			f.cond.Broadcast()
			f.waiting--
			return nil, false
		}
		f.cond.Wait()
		f.waiting--
	}
}

// affinityWindow bounds how far from the strategy's preferred end a pop
// may deviate to find a state already homed on the popping worker's
// builder (saving a term transfer). Small, so the search order stays an
// approximation of the strategy rather than per-worker DFS.
const affinityWindow = 8

// take picks an index per the strategy. Caller holds f.mu.
func (f *frontier) take(home *expr.Builder) *State {
	idx := len(f.items) - 1 // DFS default
	switch f.strategy {
	case DFS:
		for i := idx; i >= 0 && i > idx-affinityWindow; i-- {
			if f.items[i].home == home {
				idx = i
				break
			}
		}
	case BFS:
		idx = 0
		for i := 0; i < len(f.items) && i < affinityWindow; i++ {
			if f.items[i].home == home {
				idx = i
				break
			}
		}
	case Random:
		idx = f.rng.Intn(len(f.items))
	case Coverage:
		best := int64(1) << 62
		for i, s := range f.items {
			if v := f.vt.get(s.PC); v < best {
				best, idx = v, i
			}
		}
	}
	st := f.items[idx]
	f.items = append(f.items[:idx], f.items[idx+1:]...)
	f.depth.Set(int64(len(f.items)))
	f.prog.setFrontier(int64(len(f.items)))
	return st
}

// close stops the exploration: wakes all waiters and kills queued states.
func (f *frontier) close() {
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		f.killed += int64(len(f.items))
		f.killedCtr.Add(int64(len(f.items)))
		for _, st := range f.items {
			f.prof.Kill(st.PC)
		}
		if f.tr != nil && len(f.items) > 0 {
			f.tr.Event("kill", -1, -1, 0,
				fmt.Sprintf("run-stopped (%d queued states)", len(f.items)))
		}
		f.items = nil
		f.depth.Set(0)
		f.prog.setFrontier(0)
		f.cond.Broadcast()
	}
	f.mu.Unlock()
}

// parRun is the shared coordination state of one parallel Run.
type parRun struct {
	opts      Options
	front     *frontier
	pathsDone atomic.Int64
	bugCount  atomic.Int64
	deadline  time.Time

	errMu sync.Mutex
	err   error
}

// stopNow reports whether a global budget (or a cancellation) ended the
// run.
func (pr *parRun) stopNow() bool {
	if canceled(pr.opts.Cancel) {
		return true
	}
	if pr.pathsDone.Load() >= int64(pr.opts.MaxPaths) {
		return true
	}
	if pr.opts.StopOnBug && pr.bugCount.Load() > 0 {
		return true
	}
	if !pr.deadline.IsZero() && time.Now().After(pr.deadline) {
		return true
	}
	return false
}

func (pr *parRun) fail(err error) {
	pr.errMu.Lock()
	if pr.err == nil {
		pr.err = err
	}
	pr.errMu.Unlock()
	pr.front.close()
}

// workerEngine builds the sub-Engine for worker i: a private Builder,
// Solver and decode cache over the shared read-only machinery.
func (e *Engine) workerEngine(i int, vt *visitTable, pr *parRun) *Engine {
	b := expr.NewBuilder()
	b.Simplify = !e.Opts.NoSimplify
	w := &Engine{
		Arch:       e.Arch,
		B:          b,
		Solver:     smt.New(b),
		Dec:        e.Dec,
		Prog:       e.Prog,
		Opts:       e.Opts,
		checkers:   e.checkers,
		Layout:     e.Layout,
		xlate:      make(map[uint64]decoder.Decoded),
		visits:     make(map[uint64]int64),
		compiled:   e.compiled,
		rng:        rand.New(rand.NewSource(e.Opts.Seed + 0x9e37 + int64(i))),
		bugSeen:    e.bugSeen,
		cache:      e.cache,
		inputNames: e.inputNames,
		shVisits:   vt,
		par:        pr,
		workerID:   i,
		m:          e.m,
		tr:         e.tr,
		cov:        e.cov,
		inject:     e.inject,
		profiler:   e.profiler,
		prof:       e.profiler.NewShard(),
		progress:   e.progress,
	}
	w.Solver.MaxConflicts = e.Opts.MaxSolverConflicts
	w.Solver.QueryDeadline = e.Opts.SolverDeadline
	w.Solver.Cache = e.cache
	w.Solver.Obs = e.Solver.Obs
	w.Solver.Inject = e.inject
	switch {
	case w.prof != nil && w.progress != nil:
		w.Solver.Prof = progressProf{shard: w.prof, prog: w.progress}
	case w.prof != nil:
		w.Solver.Prof = w.prof
	case w.progress != nil:
		w.Solver.Prof = progressProf{prog: w.progress}
	}
	return w
}

// adopt re-homes a state onto this worker's builder by transferring every
// live term. The state is exclusively owned by the caller (it was just
// popped), so in-place mutation is safe; reading the source builder's
// nodes is safe because expression nodes are immutable.
func (e *Engine) adopt(st *State) {
	if st.home == e.B {
		return
	}
	e.steals++
	memo := make(map[*expr.Expr]*expr.Expr)
	for i, r := range st.regs {
		st.regs[i] = expr.Transfer(e.B, r, memo)
	}
	for a, v := range st.mem.overlay {
		st.mem.overlay[a] = expr.Transfer(e.B, v, memo)
	}
	for i, c := range st.PathCond {
		st.PathCond[i] = expr.Transfer(e.B, c, memo)
	}
	for i, o := range st.Output {
		st.Output[i] = expr.Transfer(e.B, o, memo)
	}
	st.home = e.B
}

// workerDied removes a dead worker from the frontier's accounting so
// the quiescence test (everyone waiting, nothing queued) still
// terminates the run instead of deadlocking on a worker that will never
// pop again. Called from the worker-goroutine panic backstop.
func (f *frontier) workerDied() {
	f.mu.Lock()
	f.workers--
	if f.workers <= f.waiting {
		// Every surviving worker is already waiting: quiescence.
		f.closed = true
	}
	f.cond.Broadcast()
	f.mu.Unlock()
}

// work is one worker's loop: pop a state, adopt it, and run its chain
// inline until it completes or forks, pushing extra children to the
// shared frontier (where siblings become stealable work).
func (e *Engine) work(pr *parRun) {
	for {
		st, ok := pr.front.pop(e.B)
		if !ok {
			return
		}
		t0 := time.Now()
		burst := st.ID
		e.adopt(st)
		cur := st
		for cur != nil {
			if pr.stopNow() {
				pr.front.close()
				e.report.Stats.StatesKilled++
				e.m.statesKilled.Inc()
				e.prof.Kill(cur.PC)
				if e.tr != nil {
					e.tr.Event("kill", e.workerID, cur.ID, cur.PC, "global-budget")
				}
				break
			}
			children, err := e.safeStep(cur)
			if err != nil {
				pr.fail(err)
				break
			}
			cur = nil
			for _, c := range children {
				switch {
				case c.Done:
					e.finish(c)
					pr.pathsDone.Add(1)
				case cur == nil:
					cur = c // keep one child inline: no transfer, hot caches
				default:
					pr.front.push(c)
				}
			}
		}
		e.busy += time.Since(t0)
		if e.tr != nil {
			e.tr.Span("exec", e.workerID, burst, st.PC, t0, "")
		}
	}
}

// runParallel distributes Run over Opts.Workers workers and merges their
// private reports into a canonical, schedule-independent report.
func (e *Engine) runParallel() (*Report, error) {
	t0 := time.Now()
	e.report = Report{}
	e.bugSeen = newBugDedup()

	nw := e.Opts.Workers
	vt := newVisitTable()
	pr := &parRun{opts: e.Opts}
	pr.front = newFrontier(nw, e.Opts, vt, e.m, e.tr, e.profiler)
	if e.Opts.TimeBudget > 0 {
		pr.deadline = t0.Add(e.Opts.TimeBudget)
	}

	workers := make([]*Engine, nw)
	for i := range workers {
		workers[i] = e.workerEngine(i, vt, pr)
	}
	pr.front.push(workers[0].initialState())

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *Engine) {
			defer wg.Done()
			// Backstop: panics escaping the per-path boundary (frontier
			// bookkeeping, adopt/transfer, merge plumbing) kill only
			// this worker. The frontier drops it from the quiescence
			// count and the fault is recorded on the worker's report.
			defer func() {
				if r := recover(); r != nil {
					pr.front.workerDied()
					w.recordFault(PathFault{
						Layer: layerOf(r, "sym"),
						Msg:   fmt.Sprint(r),
						Stack: stackTrace(),
					})
				}
			}()
			w.work(pr)
		}(w)
	}
	wg.Wait()
	if pr.err != nil {
		return nil, pr.err
	}

	e.mergeWorkerReports(workers, vt, pr)
	e.report.Stats.WallTime = time.Since(t0)
	e.snapshotCompileStats()
	return &e.report, nil
}

// mergeWorkerReports folds the per-worker reports into e.report in a
// canonical order and re-homes the surviving terms onto the coordinator's
// builder, so post-Run uses of e.B and e.Solver against the report (e.g.
// re-checking a path condition) keep working.
func (e *Engine) mergeWorkerReports(workers []*Engine, vt *visitTable, pr *parRun) {
	s := &e.report.Stats
	var paths []PathResult
	var bugs []Bug
	for _, w := range workers {
		ws := w.report.Stats
		s.Instructions += ws.Instructions
		s.Forks += ws.Forks
		s.Infeasible += ws.Infeasible
		s.PathsDone += ws.PathsDone
		s.StatesKilled += ws.StatesKilled
		s.DecodeCalls += ws.DecodeCalls
		s.Merges += ws.Merges
		if ws.MaxDepth > s.MaxDepth {
			s.MaxDepth = ws.MaxDepth
		}
		s.Solver.Add(w.Solver.Stats)
		s.PathFaults += ws.PathFaults
		s.Degraded.Add(ws.Degraded)
		e.report.Faults = append(e.report.Faults, w.report.Faults...)
		s.WorkerStats = append(s.WorkerStats, WorkerStat{
			ID:     w.workerID,
			Steps:  ws.Instructions,
			Paths:  ws.PathsDone,
			Steals: w.steals,
			Busy:   w.busy,
			Solver: w.Solver.Stats,
		})
		paths = append(paths, w.report.Paths...)
		bugs = append(bugs, w.report.Bugs...)
		e.profiler.Fold(w.prof)
	}
	pr.front.mu.Lock()
	s.StatesKilled += int(pr.front.killed)
	s.MaxLiveSet = pr.front.maxLen
	pr.front.mu.Unlock()
	s.Coverage = vt.distinct()

	// Canonical path order: the signature identifies the branch decisions
	// of the path independent of worker and schedule; the remaining keys
	// only break (vanishingly unlikely) signature ties.
	sort.Slice(paths, func(i, j int) bool {
		a, b := &paths[i], &paths[j]
		if a.sig != b.sig {
			return a.sig < b.sig
		}
		if a.Status != b.Status {
			return a.Status < b.Status
		}
		if a.EndPC != b.EndPC {
			return a.EndPC < b.EndPC
		}
		if a.Steps != b.Steps {
			return a.Steps < b.Steps
		}
		return a.Depth < b.Depth
	})
	memo := make(map[*expr.Expr]*expr.Expr)
	for i := range paths {
		paths[i].ID = i
		for k, c := range paths[i].PathCond {
			paths[i].PathCond[k] = expr.Transfer(e.B, c, memo)
		}
		for k, o := range paths[i].Output {
			paths[i].Output[k] = expr.Transfer(e.B, o, memo)
		}
		if end := paths[i].End; end != nil {
			for k, r := range end.Regs {
				end.Regs[k] = expr.Transfer(e.B, r, memo)
			}
			for a, v := range end.Mem {
				end.Mem[a] = expr.Transfer(e.B, v, memo)
			}
		}
	}
	sort.Slice(bugs, func(i, j int) bool {
		a, b := &bugs[i], &bugs[j]
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
	sort.Slice(e.report.Faults, func(i, j int) bool {
		a, b := &e.report.Faults[i], &e.report.Faults[j]
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		return a.Msg < b.Msg
	})
	e.report.Paths = paths
	e.report.Bugs = bugs
}

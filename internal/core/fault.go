// Fault isolation and graceful degradation (docs/robustness.md).
//
// Every path step runs under a recover boundary (safeStep) that
// converts panics — from a hostile ADL, a decoder bug, an injected
// fault — into a typed PathFault on that one path: the path dies with
// StatusPanic, its siblings and the run continue. Solver budget and
// deadline exhaustion route through one degradation policy point
// (degradeUnknown) that over-approximates instead of erroring, with
// every decision counted per cause in Stats.Degraded and the
// degraded_total metric series.

package core

import (
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/expr"
	"repro/internal/faultinject"
	"repro/internal/rtl"
	"repro/internal/smt"
)

// PathFault describes a panic recovered at a per-path boundary. The
// layer names the pipeline stage the panic was attributed to (the
// injection site for injected faults, the evaluator for typed rtl
// errors, the recover boundary otherwise).
type PathFault struct {
	PC    uint64
	Layer string // one of faultLayers
	Msg   string
	Stack string // truncated runtime stack at the recovery point
}

func (f PathFault) String() string {
	return fmt.Sprintf("path fault at pc=%#x layer=%s: %s", f.PC, f.Layer, f.Msg)
}

// faultLayers are the fault-attribution layer names, aligned with the
// faultinject.Site strings and the fault_paths_total metric labels.
var faultLayers = [...]string{"decode", "translate", "sym", "conc", "solver", "mem"}

func faultLayerIndex(layer string) int {
	for i, l := range faultLayers {
		if l == layer {
			return i
		}
	}
	return 2 // "sym", the default boundary layer
}

// DegradeCause enumerates the reasons the engine degraded gracefully —
// over-approximated or killed one state — instead of failing a run.
type DegradeCause int

// Degradation causes. Each budget/deadline pair names the query site.
const (
	DegradeBranchBudget     DegradeCause = iota // feasibility check hit the conflict budget: both sides kept
	DegradeBranchDeadline                       // feasibility check hit the wall-clock deadline: both sides kept
	DegradeJumpEnumBudget                       // jump-target enumeration stopped at the conflict budget
	DegradeJumpEnumDeadline                     // jump-target enumeration stopped at the deadline
	DegradeConcBudget                           // address concretization hit the conflict budget: evaluated fallback address
	DegradeConcDeadline                         // address concretization hit the deadline: evaluated fallback address
	DegradeFlipBudget                           // concolic branch-flip solve abandoned at the conflict budget
	DegradeFlipDeadline                         // concolic branch-flip solve abandoned at the deadline
	DegradeStateBudget                          // state exceeded Options.MaxStateTerms and was killed
	NumDegradeCauses
)

func (c DegradeCause) String() string {
	switch c {
	case DegradeBranchBudget:
		return "branch-budget"
	case DegradeBranchDeadline:
		return "branch-deadline"
	case DegradeJumpEnumBudget:
		return "jump-enum-budget"
	case DegradeJumpEnumDeadline:
		return "jump-enum-deadline"
	case DegradeConcBudget:
		return "concretize-budget"
	case DegradeConcDeadline:
		return "concretize-deadline"
	case DegradeFlipBudget:
		return "flip-budget"
	case DegradeFlipDeadline:
		return "flip-deadline"
	case DegradeStateBudget:
		return "state-terms"
	}
	return "unknown"
}

// DegradeStats counts graceful degradations by cause for one run.
type DegradeStats [NumDegradeCauses]int64

// Add accumulates o into d (used to merge per-worker stats).
func (d *DegradeStats) Add(o DegradeStats) {
	for i, n := range o {
		d[i] += n
	}
}

// Total sums all causes.
func (d DegradeStats) Total() int64 {
	var t int64
	for _, n := range d {
		t += n
	}
	return t
}

// degrade records one graceful degradation.
func (e *Engine) degrade(cause DegradeCause) {
	e.report.Stats.Degraded[cause]++
	e.m.degraded[cause].Inc()
	e.progress.incDegraded()
	e.prof.Degrade(cause.String())
}

// degradeUnknown is the single policy point for unknown solver results.
// A budget or deadline failure is absorbed — counted under the caller's
// cause and reported as degraded=true so the caller over-approximates
// (keep both branch sides, stop enumerating, concretize by evaluation).
// Any other error is the caller's to propagate.
func (e *Engine) degradeUnknown(err error, budget, deadline DegradeCause) (degraded bool, rerr error) {
	switch err {
	case nil:
		return false, nil
	case smt.ErrBudget:
		e.degrade(budget)
		return true, nil
	case smt.ErrDeadline:
		e.degrade(deadline)
		return true, nil
	}
	return false, err
}

// maxFaultStack bounds the stack capture per fault; reports stay small
// even under heavy injection.
const maxFaultStack = 4096

func stackTrace() string {
	st := debug.Stack()
	if len(st) > maxFaultStack {
		st = st[:maxFaultStack]
	}
	return string(st)
}

// layerOf attributes a recovered panic value to a fault layer: injected
// faults name their site (and are accounted as surfaced, exactly once,
// here), typed rtl errors name the translate layer, anything else gets
// the recover boundary's own layer.
func layerOf(r any, boundary string) string {
	if f, ok := faultinject.Observe(r); ok {
		return f.Site.String()
	}
	if _, ok := r.(*rtl.UnsupportedError); ok {
		return "translate"
	}
	return boundary
}

// recordFault appends a fault to the run report and bumps the counters.
func (e *Engine) recordFault(pf PathFault) {
	e.report.Faults = append(e.report.Faults, pf)
	e.report.Stats.PathFaults++
	e.m.faults[faultLayerIndex(pf.Layer)].Inc()
}

// recoverFault converts a panic recovered at the per-path boundary into
// a dead path: the state terminates with StatusPanic carrying the
// PathFault, and the run continues with its siblings.
func (e *Engine) recoverFault(st *State, r any) {
	pf := PathFault{
		PC:    st.PC,
		Layer: layerOf(r, "sym"),
		Msg:   fmt.Sprint(r),
		Stack: stackTrace(),
	}
	st.PathFault = &pf
	st.Fault = pf.Msg
	st.done(StatusPanic)
	e.recordFault(pf)
	if e.tr != nil {
		e.tr.Event("kill", e.workerID, st.ID, st.PC, "panic: "+pf.Layer)
	}
}

// safeStep is the per-path fault boundary: it runs one engine step and
// converts any panic underneath — decoder, translator, state update,
// solver, memory, checker, injected — into a StatusPanic termination of
// that one state. It also enforces the per-state term budget of the
// resource governor.
func (e *Engine) safeStep(st *State) (children []*State, err error) {
	defer func() {
		if r := recover(); r != nil {
			e.recoverFault(st, r)
			children, err = []*State{st}, nil
		}
	}()
	e.inject.Fire(faultinject.SiteSymStep)
	// Profiling (Options.Profile): mark the stepped PC so solver queries
	// and degradations issued underneath attribute to it, and sample the
	// step's wall time into the per-PC series.
	var pt0 time.Time
	profSampled := false
	if e.prof != nil {
		e.prof.SetPC(st.PC)
		if profSampled = e.prof.SampleStep(); profSampled {
			pt0 = time.Now()
		}
	}
	children, err = e.step(st)
	if profSampled {
		e.prof.StepTime(st.PC, time.Since(pt0))
	}
	if err != nil {
		return nil, err
	}
	if e.Opts.MaxStateTerms > 0 && e.concEnv == nil {
		for _, c := range children {
			if !c.Done && c.termSize() > e.Opts.MaxStateTerms {
				e.degrade(DegradeStateBudget)
				e.prof.Kill(c.PC)
				c.Fault = fmt.Sprintf("state term budget exceeded (%d > %d)", c.termSize(), e.Opts.MaxStateTerms)
				c.done(StatusKilled)
			}
		}
	}
	return children, nil
}

// termSize is the governor's symbolic-footprint proxy for one state:
// path-condition terms plus symbolically written memory cells.
func (st *State) termSize() int {
	return len(st.PathCond) + st.mem.OverlaySize()
}

// checkProtected runs a solver query that happens outside the per-path
// step boundary (the concolic flip solves) under its own recover
// boundary: a panic is recorded as a run-level fault and reported as
// Unknown, which the caller already treats as "skip this flip".
func (e *Engine) checkProtected(q []*expr.Expr) (res smt.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			e.recordFault(PathFault{
				Layer: layerOf(r, "solver"),
				Msg:   fmt.Sprint(r),
				Stack: stackTrace(),
			})
			res, err = smt.Unknown, nil
		}
	}()
	return e.Solver.Check(q...)
}

// faultPathsHelp is shared by every resolver of the fault_paths_total
// series (engine, emulator, difftest) so registry get-or-create always
// sees the same help text.
const faultPathsHelp = "Paths or runs ended by a recovered panic, by fault layer"

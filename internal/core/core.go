// Package core implements the retargetable symbolic execution engine —
// the paper's primary contribution. The engine is architecture-agnostic:
// every machine-dependent ingredient (decoder, register model, semantics)
// is generated from an ADL description at construction time, so porting
// the whole analysis to a new CPU costs one description file.
//
// The engine explores program paths over symbolic machine states, forking
// at feasible branches and discharging path conditions with the bit-vector
// SMT solver in internal/smt. Security checkers observe divisions, memory
// accesses and control transfers, and report bugs with concrete
// reproducing inputs extracted from solver models.
package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/adl"
	"repro/internal/cover"
	"repro/internal/decoder"
	"repro/internal/expr"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/rtl"
	"repro/internal/smt"
)

// Strategy selects the path exploration order.
type Strategy int

// Exploration strategies.
const (
	DFS Strategy = iota
	BFS
	Random
	Coverage // prefer states whose next instruction was executed least
)

func (s Strategy) String() string {
	switch s {
	case DFS:
		return "dfs"
	case BFS:
		return "bfs"
	case Random:
		return "random"
	case Coverage:
		return "coverage"
	}
	return "unknown"
}

// Options configures an analysis run. The zero value is usable; missing
// limits default to moderate values.
type Options struct {
	MaxSteps  int64 // per-path instruction budget (default 10000)
	MaxPaths  int   // completed-path budget (default 1000)
	MaxStates int   // live-state budget (default 10000)
	Strategy  Strategy
	Seed      int64 // for Strategy == Random

	// InputBytes is the number of symbolic bytes the read trap provides
	// before reporting EOF (default 8).
	InputBytes int

	// MaxJumpTargets bounds solver-driven enumeration of symbolic jump
	// targets (default 4).
	MaxJumpTargets int

	// MaxSolverConflicts bounds each SMT query (0 = unlimited).
	MaxSolverConflicts int64

	// NoTranslationCache disables the per-address decode cache (ablation).
	// It also disables compiled execution: the compile cache is itself a
	// translation cache, so the ablation must cover both.
	NoTranslationCache bool

	// NoCompile disables compiled execution (ablation): every
	// instruction runs through the RTL interpreter instead of the
	// translate-time closure chains and superblocks of docs/compile.md.
	NoCompile bool

	// NoSimplify disables expression simplification (ablation).
	NoSimplify bool

	// StopOnBug ends the exploration as soon as any checker reports a
	// finding (time-to-first-bug measurements).
	StopOnBug bool

	// MergeStates enables opportunistic state merging: live states at
	// the same program counter fold into one if-then-else-merged state,
	// trading path count for term size (veritesting-style). Merging needs
	// a global view of the live set, so it only applies to serial runs;
	// it is ignored when Workers > 1.
	MergeStates bool

	// Workers is the number of exploration workers. 0 or 1 runs the
	// classic serial loop; N > 1 explores paths concurrently: each worker
	// owns its own expression builder and solver (neither is
	// goroutine-safe), pulls states from a shared strategy-aware frontier,
	// and re-homes stolen states onto its builder via a term-transfer
	// pass. The explored path set, the bug sites and the coverage are
	// deterministic and identical to a serial run as long as no budget
	// (MaxPaths, MaxStates, TimeBudget, StopOnBug) truncates the search;
	// see docs/engine.md for exactly which report fields stay bit-stable.
	Workers int

	// NoQueryCache disables the shared solver-query cache (ablation).
	NoQueryCache bool

	// QueryCache, when non-nil, is adopted as the solver-query cache
	// instead of a fresh per-engine one. The cache is keyed by
	// builder-independent structural digests, so one instance can be
	// shared across engines, runs and tenants — the service layer
	// (internal/service) hands every job the same persistent-backed
	// cache. Ignored under NoQueryCache.
	QueryCache *smt.QueryCache

	// Cancel, when non-nil, aborts the run cooperatively once the
	// channel is closed: the engine stops between instructions, kills
	// the remaining live states (counted in Stats.StatesKilled) and
	// returns the report of whatever completed. Serial, parallel and
	// concolic runs all honor it; the service layer wires it to job
	// cancellation.
	Cancel <-chan struct{}

	// CaptureEndState records each completed path's final symbolic
	// registers and memory overlay in PathResult.End, so differential
	// oracles can evaluate the whole end state under a concrete input.
	// Off by default: end states pin every register expression in memory
	// for the lifetime of the report.
	CaptureEndState bool

	// TimeBudget bounds the wall-clock time of a Run (0 = unlimited).
	// Checked between instructions; remaining live states are killed.
	TimeBudget time.Duration

	// Obs attaches the telemetry subsystem (internal/obs): registry-
	// backed counters, gauges and latency histograms fed from the hot
	// paths, and — when Obs.Trace is set — per-path lifecycle tracing.
	// Nil (the default) disables all instrumentation; the residual cost
	// is one pointer test per site. The end-of-run Stats struct remains
	// the deterministic snapshot; the registry is the live view of the
	// same counters (docs/observability.md).
	Obs *obs.Obs

	// Cover attaches the semantic-coverage collector (internal/cover).
	// The engine binds the architecture once at construction and then
	// records, per instruction, the sym layer (instructions stepped,
	// branch outcomes reached, control events raised), the solver layer
	// (branch polarities proved feasible), the decode layer (through the
	// shared decoder) and the translate layer (through the RTL
	// evaluator). Nil (the default) disables recording; the residual
	// cost is one pointer test per site, same bargain as Obs.
	Cover *cover.Collector

	// SolverDeadline, when nonzero, bounds every individual solver
	// query by wall clock (the per-query arm of the resource governor,
	// docs/robustness.md). On expiry the engine over-approximates —
	// keeps both branch sides, concretizes the address — instead of
	// erroring; Stats.Degraded counts every such decision by cause.
	SolverDeadline time.Duration

	// MaxStateTerms, when nonzero, bounds the symbolic footprint of a
	// single state (path-condition terms plus memory-overlay cells). A
	// state growing past the budget is killed with a recorded
	// degradation; its siblings continue. Ignored during concrete
	// replays, which must never lose the pinned path.
	MaxStateTerms int

	// Inject, when non-nil, arms the deterministic fault-injection
	// harness (internal/faultinject) at the engine's instrumented
	// sites: decode, translate, symbolic step, solver and memory
	// concretization. Production runs leave it nil (one pointer test
	// per site); the difftest chaos mode uses it to prove fault
	// isolation (docs/robustness.md).
	Inject *faultinject.Injector

	// Profile attaches the exploration profiler (internal/profile):
	// per-guest-PC attribution of solver time, fork fan-out,
	// degradations, cache misses, kills/merges and sampled step time.
	// Each engine (and each parallel worker) records into its own
	// unsynchronized shard, folded into the profiler at merge points.
	// Nil (the default) disables recording; the residual cost is one
	// pointer test per site, same bargain as Obs and Cover.
	Profile *profile.Profiler

	// Progress, when non-nil, receives live run-progress updates
	// (instructions, paths, forks, frontier depth, solver time,
	// coverage, degradations) as lock-free atomic counters an observer
	// may snapshot while the run executes — the feed behind symexd's
	// per-job SSE stream. Nil (the default) disables it; the residual
	// cost is one pointer test per site, same bargain as Obs, Cover
	// and Profile.
	Progress *Progress

	// JobID labels this run's trace events and profile with the
	// analysis-service job that owns it, so artifacts from concurrent
	// daemon jobs stay attributable. Empty outside the daemon.
	JobID string

	// Checkpoint, when non-nil, receives periodic exploration snapshots
	// from a serial run (see snapshot.go): every CheckpointEvery of wall
	// time the engine captures the completed paths plus the live
	// frontier and hands the Snapshot to the callback, which typically
	// marshals it to a durable file. Called synchronously between
	// instructions on the exploration goroutine. Ignored when
	// Workers > 1 — parallel schedules are not resumable.
	Checkpoint func(*Snapshot)

	// CheckpointEvery is the wall-time interval between Checkpoint
	// calls (default 1s when Checkpoint is set). The interval is a
	// floor, not a schedule: a duty-cycle governor stretches the gap to
	// ckptDutyFactor times the previous checkpoint's synchronous cost,
	// so however large the snapshot grows as paths accumulate,
	// checkpointing consumes a bounded share of the run's wall time —
	// freshness degrades before throughput does. A negative interval
	// disables both the pace and the governor and checkpoints at every
	// opportunity (between every scheduling step) — meant for tests and
	// tools that need dense cut points, not for production runs.
	CheckpointEvery time.Duration

	// Resume, when non-nil, seeds the run from a checkpoint instead of
	// the program entry point: completed paths, bugs, visit counts, the
	// ID allocator and the live frontier are restored, and exploration
	// continues where the interrupted run stopped. The engine must be
	// fresh and built for the same architecture and program the
	// snapshot was taken from. Run returns an error for a mismatched or
	// malformed snapshot, and when combined with Workers > 1.
	Resume *Snapshot

	// StackBase and StackSize describe the stack region; the engine
	// initializes the architecture's sp register to StackBase. Defaults:
	// 0x40000 and 0x10000.
	StackBase uint64
	StackSize uint64
}

func (o Options) withDefaults() Options {
	if o.MaxSteps == 0 {
		o.MaxSteps = 10000
	}
	if o.MaxPaths == 0 {
		o.MaxPaths = 1000
	}
	if o.MaxStates == 0 {
		o.MaxStates = 10000
	}
	if o.InputBytes == 0 {
		o.InputBytes = 8
	}
	if o.MaxJumpTargets == 0 {
		o.MaxJumpTargets = 4
	}
	// StackBase/StackSize default in NewEngine, which knows the address
	// width.
	return o
}

// Bug is one checker finding.
type Bug struct {
	Check   string   // checker name
	PC      uint64   // faulting instruction address
	Insn    string   // disassembly
	Msg     string   // description
	Model   expr.Env // satisfying assignment triggering the bug
	Input   []byte   // concrete reproducing input (from Model)
	PathID  int
	FoundAt int64 // instructions executed when the finding was made
}

func (b Bug) String() string {
	return fmt.Sprintf("[%s] %#x %q: %s (input %q)", b.Check, b.PC, b.Insn, b.Msg, b.Input)
}

// PathResult is one completed path.
type PathResult struct {
	ID       int
	Status   Status
	Fault    string
	EndPC    uint64
	Steps    int64
	Depth    int
	PathCond []*expr.Expr
	Output   []*expr.Expr

	// End is the final symbolic machine state, captured only when
	// Options.CaptureEndState is set (nil otherwise).
	End *EndState

	// PathFault, set when Status is StatusPanic, describes the panic
	// that killed this path (recovered at the per-path boundary).
	PathFault *PathFault

	// sig is the builder-independent path signature (a hash chain over
	// the appended path conditions); the parallel merge orders completed
	// paths by it.
	sig uint64
}

// Sig returns the builder-independent path signature: a hash chain over
// the structural digests of the appended path conditions. Unlike ID it
// names a path by its branch decisions, so reports from interrupted-
// and-resumed or parallel runs can be compared canonically.
func (p *PathResult) Sig() uint64 { return p.sig }

// Stats aggregates engine counters for one run.
type Stats struct {
	Instructions int64
	Forks        int64
	Infeasible   int64 // branch sides pruned by the solver
	PathsDone    int
	StatesKilled int
	MaxDepth     int
	MaxLiveSet   int
	DecodeCalls  int64 // actual decoder invocations (cache misses)
	Merges       int64 // state merges performed (MergeStates)

	// Compiled-execution counters (docs/compile.md). Shared across
	// workers in parallel runs; zero under the NoCompile ablation.
	CompiledUnits   int64 // instructions compiled to closure chains
	Superblocks     int64 // superblocks built (non-empty)
	SuperblockHits  int64 // superblock executions
	SuperblockInsns int64 // instructions executed inside superblocks
	Coverage        int   // distinct instruction addresses executed
	WallTime        time.Duration
	Solver          smt.Stats
	PathFaults      int64        // panics recovered at per-path boundaries
	Degraded        DegradeStats // graceful degradations by cause

	// WorkerStats has one entry per exploration worker when Workers > 1
	// (nil for serial runs). Per-worker numbers are schedule-dependent.
	WorkerStats []WorkerStat
}

// WorkerStat describes one exploration worker's share of a parallel run.
type WorkerStat struct {
	ID     int
	Steps  int64         // instructions executed by this worker
	Paths  int           // paths this worker completed
	Steals int64         // states claimed from other workers' forks
	Busy   time.Duration // time spent executing (vs waiting on the frontier)
	Solver smt.Stats
}

// Report is the outcome of Engine.Run.
type Report struct {
	Bugs  []Bug
	Paths []PathResult
	Stats Stats

	// Faults lists every panic recovered during the run — one entry
	// per dead path (also on that path's PathResult) plus any
	// non-path-scoped recoveries (e.g. a worker dying outside a step).
	Faults []PathFault
}

// CheckCtx is the context handed to checker hooks.
type CheckCtx struct {
	Engine *Engine
	State  *State
	PC     uint64
	Insn   string
	Guard  *expr.Expr // intra-instruction guard; nil = unconditional
}

// Checker observes execution events and reports bugs through
// CheckCtx.Report. Implementations live in internal/checker.
type Checker interface {
	Name() string
	// Div is called for every division with the symbolic divisor.
	Div(ctx *CheckCtx, divisor *expr.Expr)
	// MemAccess is called before a load (isWrite false) or store with the
	// unconcretized symbolic address.
	MemAccess(ctx *CheckCtx, addr *expr.Expr, cells uint, isWrite bool)
	// Jump is called when the program counter receives a non-constant
	// value that is not a branch between constant targets.
	Jump(ctx *CheckCtx, target *expr.Expr)
}

// Engine is a symbolic execution engine instance for one program.
type Engine struct {
	Arch   *adl.Arch
	B      *expr.Builder
	Solver *smt.Solver
	Dec    *decoder.Decoder
	Prog   *prog.Program

	Opts     Options
	checkers []Checker

	// Layout lists the valid memory regions for out-of-bounds checking.
	Layout []Region

	xlate  map[uint64]decoder.Decoded
	visits map[uint64]int64 // per-pc execution counts (coverage strategy)
	rng    *rand.Rand

	// compiled is the shared compiled-code cache (docs/compile.md);
	// workers of a parallel run share one instance. scratch is this
	// engine's private locals buffer for compiled execution — never
	// shared, it is mutable per-exec state.
	compiled *compileCache
	scratch  rtl.Scratch

	nextID int
	report Report

	// concEnv, when non-nil, pins symbolic choices (address
	// concretization, jump-target enumeration) to the concrete input of
	// an ongoing concolic replay.
	concEnv expr.Env

	// bugSeen suppresses duplicate findings at the same pc/checker. It is
	// sharded and concurrency-safe: in parallel runs one instance is
	// shared by every worker engine.
	bugSeen *bugDedup

	// cache memoizes solver queries; shared across workers and concolic
	// replays. Nil only when Options.NoQueryCache is set.
	cache *smt.QueryCache

	// inputNames is the precomputed "in<i>" variable-name table, so the
	// input-byte hot paths never fmt.Sprintf.
	inputNames []string

	// Parallel-run plumbing: shVisits replaces the visits map when this
	// engine is a worker of a parallel run (shared, sharded); par points
	// at the coordinating run state; workerID is this worker's index.
	shVisits *visitTable
	par      *parRun
	workerID int
	steals   int64         // states adopted from other workers' builders
	busy     time.Duration // time spent executing states

	// Telemetry (Options.Obs): m holds the resolved registry instruments
	// (all nil and no-op when telemetry is off), tr the exploration
	// tracer (nil when tracing is off). Workers share both.
	m  engineMetrics
	tr *obs.Tracer

	// cov is the architecture's semantic-coverage binding
	// (Options.Cover); nil when coverage is off. Workers share it — the
	// hit store is lock-free, so no per-worker merge is needed.
	cov *cover.ArchCov

	// inject is the armed fault injector (Options.Inject); nil in
	// production. Workers share it, so fired/surfaced counts are exact
	// across a parallel run.
	inject *faultinject.Injector

	// Exploration profiling (Options.Profile): profiler is the shared
	// fold target, prof this engine's (or worker's) unsynchronized
	// recording shard — nil when profiling is off, and every shard
	// method no-ops on nil.
	profiler *profile.Profiler
	prof     *profile.Shard

	// progress is the live run-progress block (Options.Progress); nil
	// when no observer asked for it. Workers share it — every update is
	// a single atomic op.
	progress *Progress

	// resumedWall is the wall time the interrupted legs of a resumed
	// run had already spent (Options.Resume); end-of-run and checkpoint
	// WallTime report the run-cumulative figure.
	resumedWall time.Duration
}

// StepSampleRate is the sampling factor of the engine_step_seconds
// histogram: one in this many instructions is timed. On hosts without a
// fast clock path, two time.Now() calls per instruction alone cost
// several percent of interpreter throughput; sampling keeps the latency
// distribution representative while keeping the always-on overhead
// within budget. Total step time estimates multiply the histogram sum
// by this factor.
const StepSampleRate = 8

// engineMetrics is the engine's resolved registry instrument set. The
// zero value (telemetry off) makes every record call a nil-receiver
// no-op; the `on` flag additionally guards the time.Now() calls the
// latency histograms need.
type engineMetrics struct {
	on            bool
	stepTick      uint64         // sampling counter for stepSeconds (per engine/worker)
	instructions  *obs.Counter   // engine_instructions_total
	forks         *obs.Counter   // engine_forks_total
	infeasible    *obs.Counter   // engine_infeasible_total
	pathsDone     *obs.Counter   // engine_paths_completed_total
	statesKilled  *obs.Counter   // engine_states_killed_total
	decodeCalls   *obs.Counter   // engine_decode_calls_total
	merges        *obs.Counter   // engine_merges_total
	frontierDepth *obs.Gauge     // engine_frontier_depth
	liveMax       *obs.Gauge     // engine_live_states_max
	stepSeconds   *obs.Histogram // engine_step_seconds
	decodeSeconds *obs.Histogram // engine_decode_seconds
	branchSeconds *obs.Histogram // engine_branch_check_seconds

	// Compiled-execution series (docs/compile.md).
	compiledUnits    *obs.Counter   // engine_compiled_units_total
	superblockBuilds *obs.Counter   // engine_superblock_builds_total
	superblockHits   *obs.Counter   // engine_superblock_hits_total
	superblockInsns  *obs.Counter   // engine_superblock_insns_total
	superblockLen    *obs.Histogram // engine_superblock_len

	// Robustness series (docs/robustness.md): fault_paths_total by
	// fault layer and degraded_total by degradation cause. The zero
	// arrays are nil counters, so recording stays a no-op when
	// telemetry is off.
	faults   [len(faultLayers)]*obs.Counter
	degraded [NumDegradeCauses]*obs.Counter
}

// newEngineMetrics resolves the engine instrument set against o's
// registry (get-or-create, so every engine sharing a registry feeds the
// same series). Returns the zero set when telemetry is off.
func newEngineMetrics(o *obs.Obs) engineMetrics {
	r := o.Registry()
	if r == nil {
		return engineMetrics{}
	}
	m := engineMetrics{
		on:            true,
		instructions:  r.Counter("engine_instructions_total", "Instructions executed symbolically"),
		forks:         r.Counter("engine_forks_total", "State forks at feasible branches"),
		infeasible:    r.Counter("engine_infeasible_total", "Branch sides pruned as unsatisfiable"),
		pathsDone:     r.Counter("engine_paths_completed_total", "Paths that reached a terminal status"),
		statesKilled:  r.Counter("engine_states_killed_total", "Live states dropped by a budget"),
		decodeCalls:   r.Counter("engine_decode_calls_total", "Decoder invocations (translation-cache misses)"),
		merges:        r.Counter("engine_merges_total", "Opportunistic state merges (MergeStates)"),
		frontierDepth: r.Gauge("engine_frontier_depth", "Live states queued for exploration"),
		liveMax:       r.Gauge("engine_live_states_max", "High-water mark of the live state set"),
		stepSeconds:   r.Histogram("engine_step_seconds", "Per-instruction symbolic step latency (sampled 1 in 8)", obs.TimeBuckets),
		decodeSeconds: r.Histogram("engine_decode_seconds", "Decoder invocation latency (translation-cache misses only)", obs.TimeBuckets),
		branchSeconds: r.Histogram("engine_branch_check_seconds", "Branch-feasibility decision latency (solver time)", obs.TimeBuckets),

		compiledUnits:    r.Counter("engine_compiled_units_total", "Instructions compiled to closure chains"),
		superblockBuilds: r.Counter("engine_superblock_builds_total", "Superblocks built (non-empty straightline prefixes)"),
		superblockHits:   r.Counter("engine_superblock_hits_total", "Superblock executions"),
		superblockInsns:  r.Counter("engine_superblock_insns_total", "Instructions executed inside superblocks"),
		superblockLen:    r.Histogram("engine_superblock_len", "Superblock chain length at build time", obs.SuperblockLenBuckets),
	}
	for i, l := range faultLayers {
		m.faults[i] = r.Counter(fmt.Sprintf("fault_paths_total{layer=%q}", l), faultPathsHelp)
	}
	for c := DegradeCause(0); c < NumDegradeCauses; c++ {
		m.degraded[c] = r.Counter(fmt.Sprintf("degraded_total{cause=%q}", c), "Graceful degradations (over-approximations) by cause")
	}
	return m
}

// Region is a half-open address range with a human-readable role.
type Region struct {
	Lo, Hi uint64 // [Lo, Hi)
	Role   string // "code", "data", "stack", ...
}

// NewEngine builds an engine for a program. The architecture model is the
// only machine-dependent input.
func NewEngine(a *adl.Arch, p *prog.Program, opts Options) *Engine {
	opts = opts.withDefaults()
	if opts.StackBase == 0 {
		if a.Bits <= 16 {
			opts.StackBase, opts.StackSize = uint64(1)<<(a.Bits-1)-8, 0x1000
		} else {
			opts.StackBase = 0x40000
		}
	}
	if opts.StackSize == 0 {
		opts.StackSize = 0x10000
	}
	b := expr.NewBuilder()
	b.Simplify = !opts.NoSimplify
	e := &Engine{
		Arch:     a,
		B:        b,
		Solver:   smt.New(b),
		Dec:      decoder.New(a),
		Prog:     p,
		Opts:     opts,
		xlate:    make(map[uint64]decoder.Decoded),
		visits:   make(map[uint64]int64),
		rng:      rand.New(rand.NewSource(opts.Seed + 1)),
		bugSeen:  newBugDedup(),
		compiled: newCompileCache(),
	}
	e.inputNames = make([]string, opts.InputBytes)
	for i := range e.inputNames {
		e.inputNames[i] = fmt.Sprintf("in%d", i)
	}
	if !opts.NoQueryCache {
		if opts.QueryCache != nil {
			e.cache = opts.QueryCache
		} else {
			e.cache = smt.NewQueryCache()
		}
		e.Solver.Cache = e.cache
	}
	e.m = newEngineMetrics(opts.Obs)
	e.tr = opts.Obs.Tracer().Scoped(opts.JobID)
	e.cov = opts.Cover.Bind(a)
	e.Dec.Cov = e.cov
	e.profiler = opts.Profile
	e.prof = opts.Profile.NewShard()
	e.progress = opts.Progress
	switch {
	case e.prof != nil && e.progress != nil:
		e.Solver.Prof = progressProf{shard: e.prof, prog: e.progress}
	case e.prof != nil:
		// Guarded: assigning a nil *Shard would make the interface
		// non-nil and re-arm the solver's per-query clock reads.
		e.Solver.Prof = e.prof
	case e.progress != nil:
		e.Solver.Prof = progressProf{prog: e.progress}
	}
	e.Solver.Obs = smt.NewSolverObs(opts.Obs.Registry())
	e.Solver.MaxConflicts = opts.MaxSolverConflicts
	e.Solver.QueryDeadline = opts.SolverDeadline
	e.inject = opts.Inject
	e.Dec.Inject = opts.Inject
	e.Solver.Inject = opts.Inject
	// Default layout: each program segment plus the stack.
	for _, s := range p.Segments {
		e.Layout = append(e.Layout, Region{Lo: s.Addr, Hi: s.Addr + uint64(len(s.Data)), Role: "image"})
	}
	e.Layout = append(e.Layout, Region{Lo: opts.StackBase - opts.StackSize, Hi: opts.StackBase + 1, Role: "stack"})
	return e
}

// AddChecker registers a checker for subsequent runs.
func (e *Engine) AddChecker(c Checker) { e.checkers = append(e.checkers, c) }

// AddRegion extends the valid-memory layout.
func (e *Engine) AddRegion(r Region) { e.Layout = append(e.Layout, r) }

// InRegion reports whether a concrete address lies in a valid region.
func (e *Engine) InRegion(addr uint64) bool {
	for _, r := range e.Layout {
		if addr >= r.Lo && addr < r.Hi {
			return true
		}
	}
	return false
}

// ValidAddr builds the predicate "addr..addr+cells-1 lies inside one
// valid region" for a symbolic address.
func (e *Engine) ValidAddr(addr *expr.Expr, cells uint) *expr.Expr {
	b := e.B
	valid := b.False()
	for _, r := range e.Layout {
		if r.Hi-r.Lo < uint64(cells) {
			continue
		}
		lo := b.Const(addr.Width(), r.Lo)
		last := b.Const(addr.Width(), r.Hi-uint64(cells))
		valid = b.BoolOr(valid, b.BoolAnd(b.UGe(addr, lo), b.ULe(addr, last)))
	}
	return valid
}

// ReportBug records a finding (deduplicated per checker+pc+msg, globally
// across workers in parallel runs).
func (ctx *CheckCtx) Report(check, msg string, model expr.Env) {
	e := ctx.Engine
	key := dedupKey{check: check, pc: ctx.PC, msg: msg}
	if !e.bugSeen.first(key) {
		return
	}
	if e.par != nil {
		e.par.bugCount.Add(1)
	}
	e.report.Bugs = append(e.report.Bugs, Bug{
		Check:   check,
		PC:      ctx.PC,
		Insn:    ctx.Insn,
		Msg:     msg,
		Model:   model,
		Input:   e.InputFromModel(model),
		PathID:  ctx.State.ID,
		FoundAt: e.report.Stats.Instructions,
	})
}

// SatUnder checks pathCond ∧ extra and returns the model on Sat.
func (ctx *CheckCtx) SatUnder(extra ...*expr.Expr) (bool, expr.Env) {
	e := ctx.Engine
	q := append(append([]*expr.Expr(nil), ctx.State.PathCond...), extra...)
	if ctx.Guard != nil {
		q = append(q, ctx.Guard)
	}
	r, err := e.Solver.Check(q...)
	if err != nil || r != smt.Sat {
		return false, nil
	}
	return true, e.Solver.Model()
}

// InputFromModel concretizes the symbolic input bytes under a model.
// Bytes the model does not constrain read as zero; the result is trimmed
// after the last constrained byte. Two passes over the precomputed name
// table keep this allocation-exact (one make of the trimmed length) on a
// path hot enough to show up in bug-dense runs.
func (e *Engine) InputFromModel(m expr.Env) []byte {
	last := 0
	for i := len(e.inputNames) - 1; i >= 0; i-- {
		if _, ok := m[e.inputNames[i]]; ok {
			last = i + 1
			break
		}
	}
	out := make([]byte, last)
	for i := 0; i < last; i++ {
		out[i] = byte(m[e.inputNames[i]])
	}
	return out
}

// inputName returns the symbolic-input variable name for byte i without
// formatting in the hot path.
func (e *Engine) inputName(i int) string {
	if i < len(e.inputNames) {
		return e.inputNames[i]
	}
	return fmt.Sprintf("in%d", i)
}

// canceled is the non-blocking poll behind Options.Cancel: one channel
// read per check, nil-safe.
func canceled(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

package core

import (
	"fmt"

	"repro/internal/expr"
)

// Replay is the fully concrete outcome of executing one input through the
// symbolic engine: every symbolic end-state value evaluated under the
// input environment. It is the engine-side half of a differential
// comparison against the generated concrete emulator (internal/conc).
type Replay struct {
	Status Status
	Fault  string
	EndPC  uint64
	Steps  int64
	Output []byte
	Regs   []uint64        // final register values, indexed by Reg.Num
	Mem    map[uint64]byte // final memory image (base plus evaluated writes)
}

// ReplayConcrete executes the single path induced by the concrete input
// and returns the concretized end state. Like Concolic it pins address
// concretization and jump enumeration to the input environment, so the
// engine follows exactly the path the concrete machine would take; unlike
// Run it never invokes the solver to pick models.
//
// The input is taken as-is: it should be exactly Options.InputBytes long,
// or the engine's extra symbolic input bytes will evaluate to zero while
// a concrete reference machine reports EOF instead.
func (e *Engine) ReplayConcrete(input []byte) (*Replay, error) {
	env := expr.Env{}
	for i, b := range input {
		env[e.inputName(i)] = uint64(b)
	}
	st := e.initialState()
	e.concEnv = env
	defer func() { e.concEnv = nil }()
	defer e.profiler.Fold(e.prof)

	for {
		prevLen := len(st.PathCond)
		children, err := e.safeStep(st)
		if err != nil {
			return nil, err
		}
		// Follow the unique child consistent with the concrete input.
		var next *State
		for _, c := range children {
			if !consistent(c.PathCond[prevLen:], env) {
				continue
			}
			if next != nil {
				return nil, fmt.Errorf("core: concrete replay is ambiguous at %#x", st.PC)
			}
			next = c
		}
		if next == nil {
			return nil, fmt.Errorf("core: concrete replay lost the path at %#x", st.PC)
		}
		if next.Done {
			r := &Replay{
				Status: next.Status,
				Fault:  next.Fault,
				EndPC:  next.PC,
				Steps:  next.Steps,
				Regs:   make([]uint64, len(next.regs)),
				Mem:    make(map[uint64]byte, len(next.mem.base)+len(next.mem.overlay)),
			}
			for _, o := range next.Output {
				r.Output = append(r.Output, byte(expr.Eval(o, env)))
			}
			for i, rx := range next.regs {
				r.Regs[i] = expr.Eval(rx, env)
			}
			for a, b := range next.mem.base {
				r.Mem[a] = b
			}
			for a, v := range next.mem.overlay {
				r.Mem[a] = byte(expr.Eval(v, env))
			}
			return r, nil
		}
		st = next
	}
}

// EndState is the symbolic machine state at the end of a completed path,
// captured when Options.CaptureEndState is set. Registers and memory
// writes are expressions over the symbolic input; Base is the shared
// concrete program image underneath the writes.
type EndState struct {
	Regs []*expr.Expr
	Mem  map[uint64]*expr.Expr // symbolic overlay (written bytes)
	Base map[uint64]byte       // concrete image under the overlay (shared)
}

// EvalRegs evaluates the end-state registers under a concrete input
// environment.
func (s *EndState) EvalRegs(env expr.Env) []uint64 {
	out := make([]uint64, len(s.Regs))
	for i, r := range s.Regs {
		out[i] = expr.Eval(r, env)
	}
	return out
}

// EvalMem evaluates the end-state memory under a concrete input
// environment: the base image with every symbolic write concretized.
func (s *EndState) EvalMem(env expr.Env) map[uint64]byte {
	out := make(map[uint64]byte, len(s.Base)+len(s.Mem))
	for a, b := range s.Base {
		out[a] = b
	}
	for a, v := range s.Mem {
		out[a] = byte(expr.Eval(v, env))
	}
	return out
}

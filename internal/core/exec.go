package core

import (
	"fmt"
	"time"

	"repro/internal/adl"
	"repro/internal/bv"
	"repro/internal/cover"
	"repro/internal/decoder"
	"repro/internal/expr"
	"repro/internal/rtl"
	"repro/internal/smt"
)

// ckptDutyFactor bounds the checkpoint duty cycle: the gap until the
// next checkpoint is at least this multiple of the previous one's
// synchronous cost, so snapshot building consumes at most ~1/128 <1%
// of a serial run's wall time no matter how large the path list grows.
const ckptDutyFactor = 128

// Run explores the program from its entry point and returns the report.
// With Options.Workers > 1 the exploration is distributed over a worker
// pool (see parallel.go); otherwise the classic serial loop runs.
func (e *Engine) Run() (*Report, error) {
	if e.Opts.Workers > 1 {
		if e.Opts.Resume != nil {
			return nil, fmt.Errorf("core: Resume requires a serial run (Workers = %d)", e.Opts.Workers)
		}
		return e.runParallel()
	}
	t0 := time.Now()
	e.report = Report{}
	e.bugSeen = newBugDedup()
	defer e.profiler.Fold(e.prof)

	var live []*State
	if e.Opts.Resume != nil {
		var err error
		if live, err = e.restore(e.Opts.Resume); err != nil {
			return nil, err
		}
	} else {
		live = []*State{e.initialState()}
	}
	ckptEvery := e.Opts.CheckpointEvery
	denseCkpt := ckptEvery < 0 // every opportunity, no governor (tests)
	if ckptEvery <= 0 {
		ckptEvery = time.Second
	}
	ckptGap := ckptEvery
	lastCkpt := t0

	for len(live) > 0 {
		if e.Opts.Checkpoint != nil && (denseCkpt || time.Since(lastCkpt) >= ckptGap) {
			tc := time.Now()
			e.Opts.Checkpoint(e.snapshot(live, time.Since(t0)))
			lastCkpt = time.Now()
			// Duty-cycle governor: a snapshot's cost grows with the
			// completed-path list, so a fixed pace would eventually
			// spend arbitrary fractions of the run on checkpointing.
			// Stretch the gap to a multiple of the last checkpoint's
			// synchronous cost instead — the overhead stays bounded
			// (~1/ckptDutyFactor) and only freshness degrades.
			ckptGap = ckptEvery
			if g := lastCkpt.Sub(tc) * ckptDutyFactor; g > ckptGap {
				ckptGap = g
			}
		}
		var killReason string
		switch {
		case e.report.Stats.PathsDone >= e.Opts.MaxPaths:
			killReason = "max-paths"
		case e.Opts.StopOnBug && len(e.report.Bugs) > 0:
			killReason = "stop-on-bug"
		case e.Opts.TimeBudget > 0 && time.Since(t0) > e.Opts.TimeBudget:
			killReason = "time-budget"
		case canceled(e.Opts.Cancel):
			killReason = "canceled"
		}
		if killReason != "" {
			e.report.Stats.StatesKilled += len(live)
			e.m.statesKilled.Add(int64(len(live)))
			if e.prof != nil {
				for _, s := range live {
					e.prof.Kill(s.PC)
				}
			}
			if e.tr != nil {
				e.tr.Event("kill", e.workerID, -1, 0,
					fmt.Sprintf("%s (%d live states)", killReason, len(live)))
			}
			break
		}
		if len(live) > e.report.Stats.MaxLiveSet {
			e.report.Stats.MaxLiveSet = len(live)
		}
		if e.m.on {
			e.m.frontierDepth.Set(int64(len(live)))
			e.m.liveMax.Max(int64(len(live)))
		}
		e.progress.setFrontier(int64(len(live)))
		var st *State
		st, live = e.pick(live)

		children, err := e.safeStep(st)
		if err != nil {
			return nil, err
		}
		for _, c := range children {
			if c.Done {
				e.finish(c)
			} else if len(live) < e.Opts.MaxStates {
				live = append(live, c)
			} else {
				e.report.Stats.StatesKilled++
				e.m.statesKilled.Inc()
				e.prof.Kill(c.PC)
				if e.tr != nil {
					e.tr.Event("kill", e.workerID, c.ID, c.PC, "max-states")
				}
			}
		}
		if e.Opts.MergeStates {
			live = e.mergeLive(live)
		}
	}
	if e.m.on {
		e.m.frontierDepth.Set(0)
	}
	e.progress.setFrontier(0)
	e.report.Stats.WallTime = e.resumedWall + time.Since(t0)
	e.report.Stats.Solver = e.Solver.Stats
	e.report.Stats.Coverage = len(e.visits)
	e.snapshotCompileStats()
	return &e.report, nil
}

func (e *Engine) initialState() *State {
	st := &State{
		ID:   e.nextID,
		regs: make([]*expr.Expr, len(e.Arch.Regs)),
		mem:  newMemory(e.Prog.Image(), e.Arch.Bits),
		PC:   e.Prog.Entry,
		home: e.B,
	}
	e.nextID++
	for i, r := range e.Arch.Regs {
		st.regs[i] = e.B.Const(r.Width, 0)
	}
	if e.Arch.SP != nil {
		st.SetReg(e.Arch.SP, e.B.Const(e.Arch.SP.Width, bv.Trunc(e.Opts.StackBase, e.Arch.SP.Width)))
	}
	if e.tr != nil {
		e.tr.Event("spawn", e.workerID, st.ID, st.PC, "entry")
	}
	return st
}

// pick removes the next state to run according to the strategy.
func (e *Engine) pick(live []*State) (*State, []*State) {
	idx := len(live) - 1 // DFS default
	switch e.Opts.Strategy {
	case BFS:
		idx = 0
	case Random:
		idx = e.rng.Intn(len(live))
	case Coverage:
		best := int64(1) << 62
		for i, s := range live {
			if v := e.visitCount(s.PC); v < best {
				best, idx = v, i
			}
		}
	}
	st := live[idx]
	live = append(live[:idx], live[idx+1:]...)
	return st, live
}

func (e *Engine) finish(st *State) {
	e.report.Stats.PathsDone++
	e.m.pathsDone.Inc()
	e.progress.addPaths(1)
	if e.tr != nil {
		detail := st.Status.String()
		if st.Fault != "" {
			detail += ": " + st.Fault
		}
		e.tr.Event("end", e.workerID, st.ID, st.PC, detail)
	}
	if st.Depth > e.report.Stats.MaxDepth {
		e.report.Stats.MaxDepth = st.Depth
	}
	pr := PathResult{
		ID:       st.ID,
		Status:   st.Status,
		Fault:    st.Fault,
		EndPC:    st.PC,
		Steps:    st.Steps,
		Depth:    st.Depth,
		PathCond: st.PathCond,
		Output:   st.Output,
		sig:      st.sig,

		PathFault: st.PathFault,
	}
	if e.Opts.CaptureEndState {
		end := &EndState{
			Regs: append([]*expr.Expr(nil), st.regs...),
			Mem:  make(map[uint64]*expr.Expr, len(st.mem.overlay)),
			Base: st.mem.base,
		}
		for a, v := range st.mem.overlay {
			end.Mem[a] = v
		}
		pr.End = end
	}
	e.report.Paths = append(e.report.Paths, pr)
}

// visitCount reads the per-pc execution count, from the shared table in
// parallel runs and the engine-local map otherwise.
func (e *Engine) visitCount(pc uint64) int64 {
	if e.shVisits != nil {
		return e.shVisits.get(pc)
	}
	return e.visits[pc]
}

// recordVisit bumps the per-pc execution count. It is called exactly
// once per executed instruction (interpreted or compiled), so it also
// feeds the live-progress instruction and distinct-address counters.
func (e *Engine) recordVisit(pc uint64) {
	if e.shVisits != nil {
		if e.shVisits.inc(pc) {
			e.progress.incCovered()
		}
	} else {
		e.visits[pc]++
		if e.visits[pc] == 1 {
			e.progress.incCovered()
		}
	}
	e.progress.incInstructions()
}

func (st *State) done(status Status) *State {
	st.Done = true
	st.Status = status
	return st
}

// formatName is the encoding-format symbolization handed to the
// profiler alongside the mnemonic.
func formatName(ins *adl.Insn) string {
	if ins.Format == nil {
		return ""
	}
	return ins.Format.Name
}

// decode fetches and decodes the instruction at the state's pc, going
// through the per-address translation cache when the bytes come from the
// unmodified image.
func (e *Engine) decode(st *State) (decoder.Decoded, error) {
	maxLen := e.Arch.MaxInsnBytes()
	cacheable := !st.mem.writtenRange(st.PC, maxLen)
	if !e.Opts.NoTranslationCache && cacheable {
		if d, ok := e.xlate[st.PC]; ok {
			return d, nil
		}
	}
	buf, ok := st.mem.ConcreteFetch(st.PC, maxLen)
	if !ok {
		return decoder.Decoded{}, fmt.Errorf("symbolic instruction bytes at %#x", st.PC)
	}
	e.report.Stats.DecodeCalls++
	e.m.decodeCalls.Inc()
	e.prof.CompileMiss(st.PC)
	// Only the actual decoder call is timed: translation-cache hits (the
	// common case) must not pay for two clock reads per instruction.
	var t0 time.Time
	if e.m.on {
		t0 = time.Now()
	}
	d, err := e.Dec.Decode(buf)
	if e.m.on {
		e.m.decodeSeconds.ObserveSince(t0)
	}
	if err != nil {
		return decoder.Decoded{}, err
	}
	if !e.Opts.NoTranslationCache && cacheable {
		e.xlate[st.PC] = d
	}
	return d, nil
}

// step executes one instruction of st and returns the successor states
// (one or more on forks; completed states have Done set).
func (e *Engine) step(st *State) ([]*State, error) {
	var t0 time.Time
	if e.m.on {
		// Sampled: the two clock reads dominate the instrument cost on
		// hosts without a vDSO clock, so only every StepSampleRate-th
		// instruction is timed (the counter is per worker, not shared).
		e.m.stepTick++
		if e.m.stepTick%StepSampleRate == 0 {
			t0 = time.Now()
			defer e.m.stepSeconds.ObserveSince(t0)
		}
	}
	// Compiled execution (docs/compile.md): when the instruction bytes
	// come from the unmodified image, run through the shared cache of
	// closure-compiled units and superblocks. States whose memory
	// overlay touches the fetch window — self-modifying code — and the
	// NoCompile/NoTranslationCache ablations take the interpreter below.
	if e.compileOn() && !st.mem.writtenRange(st.PC, e.Arch.MaxInsnBytes()) {
		return e.stepCompiled(st)
	}

	dec, err := e.decode(st)
	if err != nil {
		st.Fault = err.Error()
		return []*State{st.done(StatusDecode)}, nil
	}
	e.recordVisit(st.PC)
	e.report.Stats.Instructions++
	e.m.instructions.Inc()
	e.cov.Hit(cover.LSym, dec.Insn)
	if e.prof != nil {
		e.prof.Exec(st.PC, dec.Insn.Mnemonic, formatName(dec.Insn))
	}
	st.Steps++

	insAddr := st.PC
	disasm := decoder.Disasm(dec, insAddr)

	// The pc register holds the fall-through continuation; semantic reads
	// of pc observe the instruction's own address via execCtx.ReadReg.
	pcReg := e.Arch.PC
	cont := bv.Trunc(insAddr+uint64(dec.Len), e.Arch.Bits)
	st.SetReg(pcReg, e.B.Const(pcReg.Width, cont))

	ec := &execCtx{e: e, st: st, insAddr: insAddr, disasm: disasm}
	ev := &rtl.SymEval{B: e.B, A: e.Arch, Cov: e.cov, Inject: e.inject}
	events := ev.Exec(ec, dec.Insn, dec.Ops)
	if ec.err != nil {
		return nil, ec.err
	}
	if ec.infeasible {
		// A memory concretization found the path condition unsatisfiable.
		return []*State{st.done(StatusKilled)}, nil
	}

	// Process control events in order; states may split per event.
	done, continuing, err := e.handleEvents(st, events, insAddr, disasm)
	if err != nil {
		return nil, err
	}

	out := done
	for _, c := range continuing {
		if c.Steps >= e.Opts.MaxSteps {
			out = append(out, c.done(StatusSteps))
			continue
		}
		next, err := e.resolvePC(c, dec, insAddr, disasm)
		if err != nil {
			return nil, err
		}
		out = append(out, next...)
	}
	return out, nil
}

// handleEvents applies trap/halt/fault events in order, splitting states
// on symbolic guards. It returns the completed states and the states that
// continue to the next instruction.
func (e *Engine) handleEvents(st *State, events []rtl.Event, pc uint64, disasm string) (done, continuing []*State, err error) {
	// Division observations run first, against the pre-event path
	// condition: control events below (e.g. an explicit divide-by-zero
	// fault in the description) otherwise constrain the divisor away
	// before the checker sees it.
	for _, ev := range events {
		if ev.Kind != rtl.EvDiv {
			continue
		}
		e.cov.Event(cover.LSym, cover.EvDiv)
		ctx := &CheckCtx{Engine: e, State: st, PC: pc, Insn: disasm, Guard: ev.Guard}
		for _, c := range e.checkers {
			c.Div(ctx, ev.Code)
		}
	}
	continuing = []*State{st}
	for _, ev := range events {
		if ev.Kind == rtl.EvDiv {
			continue
		}
		var next []*State
		for _, s := range continuing {
			taken, fallthru, ferr := e.splitOnGuard(s, ev.Guard)
			if ferr != nil {
				return nil, nil, ferr
			}
			if fallthru != nil {
				next = append(next, fallthru)
			}
			if taken == nil {
				continue
			}
			switch ev.Kind {
			case rtl.EvFault:
				e.cov.Event(cover.LSym, cover.EvFault)
				taken.Fault = ev.Msg
				done = append(done, taken.done(StatusFault))
			case rtl.EvHalt:
				e.cov.Event(cover.LSym, cover.EvHalt)
				done = append(done, taken.done(StatusHalt))
			case rtl.EvTrap:
				e.cov.Event(cover.LSym, cover.EvTrap)
				after := e.trap(taken, ev.Code, pc)
				if after.Done {
					done = append(done, after)
				} else {
					next = append(next, after)
				}
			}
		}
		continuing = next
	}
	return done, continuing, nil
}

// splitOnGuard forks st on a guard condition: taken is the state where
// the guard holds (pathCond extended), fallthru where it does not. Either
// may be nil when infeasible. An unconditional guard yields taken = st.
func (e *Engine) splitOnGuard(st *State, guard *expr.Expr) (taken, fallthru *State, err error) {
	if guard == nil || guard.Kind() == expr.KBoolConst && guard.ConstVal() == 1 {
		return st, nil, nil
	}
	if guard.Kind() == expr.KBoolConst { // constant false
		return nil, st, nil
	}
	e.report.Stats.Forks++
	e.m.forks.Inc()
	e.progress.addForks(1)
	e.prof.Fork(st.PC, 1)
	var t0 time.Time
	if e.m.on || e.tr != nil {
		t0 = time.Now()
	}
	sat, err := e.feasible(append(st.PathCond, guard))
	if err != nil {
		return nil, nil, err
	}
	if sat {
		taken = st.clone(e.nextID)
		e.nextID++
		taken.appendCond(guard)
		if e.tr != nil {
			e.tr.Event("fork", e.workerID, taken.ID, st.PC, fmt.Sprintf("guard taken, parent=%d", st.ID))
		}
	} else {
		e.report.Stats.Infeasible++
		e.m.infeasible.Inc()
		e.prof.Infeasible(st.PC)
	}
	neg := e.B.BoolNot(guard)
	sat, err = e.feasible(append(st.PathCond, neg))
	if err != nil {
		return nil, nil, err
	}
	if sat {
		st.appendCond(neg)
		fallthru = st
	} else {
		e.report.Stats.Infeasible++
		e.m.infeasible.Inc()
		e.prof.Infeasible(st.PC)
	}
	if e.m.on {
		e.m.branchSeconds.ObserveSince(t0)
	}
	if e.tr != nil {
		e.tr.Span("branch", e.workerID, st.ID, st.PC, t0,
			fmt.Sprintf("guard: taken=%v fallthru=%v", taken != nil, fallthru != nil))
	}
	return taken, fallthru, nil
}

// feasible checks satisfiability, treating solver budget or deadline
// exhaustion as feasible (sound for bug finding: we never prune a path
// we are unsure about, at the cost of possibly exploring dead ones).
// The decision routes through the shared degradation policy so every
// over-approximation is counted by cause.
func (e *Engine) feasible(cond []*expr.Expr) (bool, error) {
	r, err := e.Solver.Check(cond...)
	deg, err := e.degradeUnknown(err, DegradeBranchBudget, DegradeBranchDeadline)
	if deg {
		return true, nil
	}
	if err != nil {
		return false, err
	}
	return r != smt.Unsat, nil
}

// trap implements the shared system-call convention symbolically.
func (e *Engine) trap(st *State, code *expr.Expr, pc uint64) *State {
	if !code.IsConst() {
		st.Fault = "symbolic trap code"
		return st.done(StatusFault)
	}
	switch code.ConstVal() {
	case 0: // exit
		return st.done(StatusExit)
	case 1: // read one input byte
		ret := e.Arch.Reg("sysret")
		if ret == nil {
			st.Fault = "architecture has no sysret alias"
			return st.done(StatusFault)
		}
		if st.inputCount < e.Opts.InputBytes {
			in := e.B.Var(8, e.inputName(st.inputCount))
			st.inputCount++
			st.SetReg(ret, e.B.ZExt(in, ret.Width))
		} else {
			st.SetReg(ret, e.B.Const(ret.Width, bv.Mask(ret.Width)))
		}
		return st
	case 2: // write one output byte
		arg := e.Arch.Reg("sysarg")
		if arg == nil {
			st.Fault = "architecture has no sysarg alias"
			return st.done(StatusFault)
		}
		st.Output = append(st.Output, e.B.Extract(st.Reg(arg), 7, 0))
		return st
	}
	st.Fault = fmt.Sprintf("unknown trap code %d", code.ConstVal())
	return st.done(StatusFault)
}

// resolvePC turns the (possibly symbolic) post-instruction pc into
// concrete successor states. The pc register already holds the
// fall-through continuation when the semantics did not branch.
func (e *Engine) resolvePC(st *State, dec decoder.Decoded, insAddr uint64, disasm string) ([]*State, error) {
	pcv := st.Reg(e.Arch.PC)
	if targets, ok := e.splitTargets(pcv, nil); ok {
		return e.forkTargets(st, targets, dec, insAddr)
	}
	// General symbolic target: tell the checkers, then enumerate models.
	ctx := &CheckCtx{Engine: e, State: st, PC: insAddr, Insn: disasm}
	for _, c := range e.checkers {
		c.Jump(ctx, pcv)
	}
	return e.enumerateJump(st, pcv)
}

// target is one candidate pc value guarded by a chain of branch
// conditions.
type target struct {
	addr  uint64
	conds []*expr.Expr
}

// splitTargets decomposes an ite-tree over constant leaves into guarded
// targets; ok is false when the tree has a non-constant leaf.
func (e *Engine) splitTargets(pcv *expr.Expr, conds []*expr.Expr) ([]target, bool) {
	switch {
	case pcv.IsConst():
		return []target{{addr: pcv.ConstVal(), conds: append([]*expr.Expr(nil), conds...)}}, true
	case pcv.Kind() == expr.KITE:
		c := pcv.Arg(0)
		thenTs, ok := e.splitTargets(pcv.Arg(1), append(conds, c))
		if !ok {
			return nil, false
		}
		elseTs, ok := e.splitTargets(pcv.Arg(2), append(append([]*expr.Expr(nil), conds...), e.B.BoolNot(c)))
		if !ok {
			return nil, false
		}
		return append(thenTs, elseTs...), true
	default:
		return nil, false
	}
}

// forkTargets creates one successor per feasible target. dec and
// insAddr identify the branching instruction for coverage: a target is
// the taken outcome when it differs from the fall-through continuation,
// and a polarity counts for the solver layer only when a feasibility
// check actually discharged it.
func (e *Engine) forkTargets(st *State, ts []target, dec decoder.Decoded, insAddr uint64) ([]*State, error) {
	var out []*State
	if len(ts) > 1 {
		e.report.Stats.Forks += int64(len(ts) - 1)
		e.m.forks.Add(int64(len(ts) - 1))
		e.progress.addForks(int64(len(ts) - 1))
		e.prof.Fork(insAddr, int64(len(ts)-1))
	}
	cont := bv.Trunc(insAddr+uint64(dec.Len), e.Arch.Bits)
	baseSig := st.sig
	for i, t := range ts {
		cond := append(append([]*expr.Expr(nil), st.PathCond...), t.conds...)
		taken := bv.Trunc(t.addr, e.Arch.Bits) != cont
		checked := len(ts) > 1 || len(t.conds) > 0
		if checked {
			var t0 time.Time
			if e.m.on || e.tr != nil {
				t0 = time.Now()
			}
			ok, err := e.feasible(cond)
			if err != nil {
				return nil, err
			}
			if e.m.on {
				e.m.branchSeconds.ObserveSince(t0)
			}
			if e.tr != nil {
				e.tr.Span("branch", e.workerID, st.ID, st.PC,
					t0, fmt.Sprintf("target %#x: feasible=%v", t.addr, ok))
			}
			if !ok {
				e.report.Stats.Infeasible++
				e.m.infeasible.Inc()
				e.prof.Infeasible(insAddr)
				continue
			}
			e.cov.Branch(cover.LSolver, dec.Insn, taken)
		}
		e.cov.Branch(cover.LSym, dec.Insn, taken)
		var child *State
		if i == len(ts)-1 {
			child = st // reuse the parent for the last side
			if len(ts) > 1 {
				child.Depth++
			}
		} else {
			child = st.clone(e.nextID)
			e.nextID++
			if e.tr != nil {
				e.tr.Event("fork", e.workerID, child.ID, st.PC,
					fmt.Sprintf("branch to %#x, parent=%d", t.addr, st.ID))
			}
		}
		child.PathCond = cond
		sig := baseSig
		for _, c := range t.conds {
			sig = expr.MixHash(sig, expr.Hash(c))
		}
		child.sig = sig
		child.PC = bv.Trunc(t.addr, e.Arch.Bits)
		e.prof.Edge(insAddr, child.PC)
		out = append(out, child)
	}
	return out, nil
}

// enumerateJump concretizes a general symbolic jump target by repeated
// solver models, up to MaxJumpTargets.
func (e *Engine) enumerateJump(st *State, pcv *expr.Expr) ([]*State, error) {
	if e.concEnv != nil {
		// Concolic replay: follow the concrete target only.
		addr := expr.Eval(pcv, e.concEnv)
		st.appendCond(e.B.Eq(pcv, e.B.Const(pcv.Width(), addr)))
		st.PC = addr
		return []*State{st}, nil
	}
	var out []*State
	excl := append([]*expr.Expr(nil), st.PathCond...)
	for i := 0; i < e.Opts.MaxJumpTargets; i++ {
		var t0 time.Time
		if e.m.on || e.tr != nil {
			t0 = time.Now()
		}
		r, err := e.Solver.Check(excl...)
		if e.m.on {
			e.m.branchSeconds.ObserveSince(t0)
		}
		if e.tr != nil {
			e.tr.Span("jump-enum", e.workerID, st.ID, st.PC, t0,
				fmt.Sprintf("model %d: %v", i, r))
		}
		deg, err := e.degradeUnknown(err, DegradeJumpEnumBudget, DegradeJumpEnumDeadline)
		if err != nil {
			return nil, err
		}
		if deg || r != smt.Sat {
			// Budget/deadline exhaustion stops the enumeration with the
			// targets found so far (over-approximation by truncation).
			break
		}
		addr := e.Solver.Value(pcv)
		eq := e.B.Eq(pcv, e.B.Const(pcv.Width(), addr))
		child := st.clone(e.nextID)
		e.nextID++
		child.appendCond(eq)
		child.PC = addr
		out = append(out, child)
		excl = append(excl, e.B.BoolNot(eq))
		e.report.Stats.Forks++
		e.m.forks.Inc()
		e.progress.addForks(1)
		e.prof.Fork(st.PC, 1)
		e.prof.Edge(st.PC, addr)
		if e.tr != nil {
			e.tr.Event("fork", e.workerID, child.ID, st.PC,
				fmt.Sprintf("jump target %#x, parent=%d", addr, st.ID))
		}
	}
	if len(out) == 0 {
		st.Fault = "unresolvable symbolic jump target"
		return []*State{st.done(StatusFault)}, nil
	}
	return out, nil
}

package core_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/smt"
)

func TestInputEOFAfterBudget(t *testing.T) {
	// With one symbolic byte, the second read returns the all-ones EOF
	// marker; the program distinguishes the two reads.
	_, r := analyze(t, "tiny32", `
_start:
	trap 1
	mov  r4, r1
	trap 1          // EOF: r1 = 0xffffffff
	li   r5, -1
	bne  r1, r5, weird
	trap 0
weird:
	trap 2
	trap 0
`, core.Options{InputBytes: 1}, false)
	// The EOF value is concrete, so the bne is decided: one path, and it
	// must be the non-weird one.
	if len(r.Paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(r.Paths))
	}
	if len(r.Paths[0].Output) != 0 {
		t.Error("EOF marker not delivered as all-ones")
	}
}

func TestSelfModifyingCode(t *testing.T) {
	// The program overwrites an upcoming instruction with "li r5, 1"
	// before reaching it; the translation cache must not serve the stale
	// decode.
	_, r := analyze(t, "tiny32", `
_start:
	lih r1, 0x2750     // encoding of "li r5, 1" == 0x27500001
	ori r1, r1, 0x0001
	li  r2, patchme
	sw  r1, 0(r2)
patchme:
	li  r5, 2          // will be overwritten before execution... no:
	halt
`, core.Options{}, false)
	// patchme executes AFTER the store, so the patched bytes must decode.
	if len(r.Paths) != 1 || r.Paths[0].Status != core.StatusHalt {
		t.Fatalf("paths %+v", r.Paths)
	}
}

func TestSymbolicCodeBytesFault(t *testing.T) {
	// Writing a symbolic byte over an instruction and then executing it
	// must be a decode fault, not a crash.
	_, r := analyze(t, "tiny32", `
_start:
	trap 1
	li  r2, tgt
	sb  r1, 0(r2)
tgt:
	halt
`, core.Options{InputBytes: 1}, false)
	if len(r.Paths) != 1 || r.Paths[0].Status != core.StatusDecode {
		t.Fatalf("paths %+v", r.Paths)
	}
	if !strings.Contains(r.Paths[0].Fault, "symbolic instruction bytes") {
		t.Errorf("fault %q", r.Paths[0].Fault)
	}
}

func TestMaxPathsBudget(t *testing.T) {
	src := `
_start:
`
	for i := 0; i < 8; i++ {
		// A skipped increment makes the two branch sides genuinely differ.
		src += "\ttrap 1\n\tli r2, 64\n\tbltu r1, r2, s" + string(rune('a'+i)) +
			"\n\taddi r3, r3, 1\ns" + string(rune('a'+i)) + ":\n"
	}
	src += "\ttrap 0\n"
	_, r := analyze(t, "tiny32", src, core.Options{InputBytes: 8, MaxPaths: 5}, false)
	if len(r.Paths) > 5 {
		t.Errorf("paths = %d exceeds budget 5", len(r.Paths))
	}
	if r.Stats.StatesKilled == 0 {
		t.Error("no states reported killed under the path budget")
	}
}

func TestSolverBudgetDegradesGracefully(t *testing.T) {
	// A hard multiplicative constraint with a tiny conflict budget: the
	// engine must keep exploring (treating unknown as feasible).
	_, r := analyze(t, "tiny32", `
_start:
	trap 1
	mov r4, r1
	trap 1
	mov r5, r1
	mul r6, r4, r5
	li  r2, 143       // 11*13: forces real factoring work
	bne r6, r2, out
	trap 2
out:
	trap 0
`, core.Options{InputBytes: 2, MaxSolverConflicts: 1}, false)
	if len(r.Paths) == 0 {
		t.Fatal("no paths explored under solver budget")
	}
}

func TestRV32ISymbolicLoop(t *testing.T) {
	_, r := analyze(t, "rv32i", `
_start:
	addi a7, zero, 1
	ecall              # a0 = n
	andi a0, a0, 7
	addi t0, zero, 0   # i
	addi t1, zero, 0   # sum
loop:
	bgeu t0, a0, done
	add  t1, t1, t0
	addi t0, t0, 1
	jal  zero, loop
done:
	addi a0, t1, 0
	addi a7, zero, 2
	ecall
	addi a7, zero, 0
	ecall
`, core.Options{InputBytes: 1, MaxSteps: 200}, false)
	// n in 0..7: eight exit paths, outputs 0,0,1,3,6,10,15,21.
	if len(r.Paths) != 8 {
		t.Fatalf("paths = %d, want 8", len(r.Paths))
	}
}

func TestRV32IZeroRegisterInvariant(t *testing.T) {
	// Writes to x0 are discarded: storing into zero must not corrupt it.
	e, r := analyze(t, "rv32i", `
_start:
	addi a7, zero, 1
	ecall
	addi zero, a0, 1   # write to x0: discarded
	addi a0, zero, 0   # a0 = x0 = 0
	addi a7, zero, 2
	ecall              # output must be constant 0
	addi a7, zero, 0
	ecall
`, core.Options{InputBytes: 1}, false)
	if len(r.Paths) != 1 {
		t.Fatalf("paths = %d", len(r.Paths))
	}
	out := r.Paths[0].Output[0]
	res, err := e.Solver.Check(append(r.Paths[0].PathCond, e.B.Ne(out, e.B.Const(8, 0)))...)
	if err != nil || res != smt.Unsat {
		t.Fatalf("x0 corrupted: output can differ from 0 (%v %v)", res, err)
	}
}

func TestM16SymbolicFlags(t *testing.T) {
	// Branch on flags derived from a symbolic comparison.
	_, r := analyze(t, "m16", `
_start:
	trap 1
	cmpi g1, 10
	blt  neg          ; signed less-than via n^v
	trap 0
neg:
	trap 2
	trap 0
`, core.Options{InputBytes: 1}, false)
	if len(r.Paths) != 2 {
		t.Fatalf("paths = %d, want 2 (flag branch must be symbolic)", len(r.Paths))
	}
}

func TestM16CallStackSymbolic(t *testing.T) {
	// Recursive-ish call through the stack with a symbolic argument.
	_, r := analyze(t, "m16", `
_start:
	trap 1
	call inc
	call inc
	trap 2
	trap 0
inc:
	addi g1, 1
	ret
`, core.Options{InputBytes: 1}, false)
	if len(r.Paths) != 1 {
		t.Fatalf("paths = %d", len(r.Paths))
	}
	if len(r.Paths[0].Output) != 1 {
		t.Fatal("no output")
	}
}

func TestPathConditionsAreSMTExportable(t *testing.T) {
	e, r := analyze(t, "tiny32", `
_start:
	trap 1
	li r2, 50
	bltu r1, r2, a
	trap 0
a:	trap 0
`, core.Options{InputBytes: 1}, false)
	for _, p := range r.Paths {
		if len(p.PathCond) == 0 {
			continue
		}
		script := expr.SMTLIB2String(p.PathCond)
		if !strings.Contains(script, "(check-sat)") || !strings.Contains(script, "in0") {
			t.Errorf("bad SMT-LIB export:\n%s", script)
		}
	}
	_ = e
}

func TestDeterministicRuns(t *testing.T) {
	src := `
_start:
	trap 1
	li r2, 7
	bltu r1, r2, a
	trap 0
a:	trap 2
	trap 0
`
	_, r1 := analyze(t, "tiny32", src, core.Options{InputBytes: 1, Strategy: core.Random, Seed: 5}, false)
	_, r2 := analyze(t, "tiny32", src, core.Options{InputBytes: 1, Strategy: core.Random, Seed: 5}, false)
	if len(r1.Paths) != len(r2.Paths) || r1.Stats.Instructions != r2.Stats.Instructions {
		t.Error("same seed produced different explorations")
	}
}

func TestTiny64SymbolicExecution(t *testing.T) {
	// 64-bit machine: symbolic branch over a 64-bit comparison.
	e, r := analyze(t, "tiny64", `
_start:
	trap 1
	li   r2, 100
	mul  r3, r1, r2     ; 64-bit product of a symbolic byte
	li   r4, 10000
	bltu r3, r4, small  ; symbolic: in*100 < 10000 iff in < 100
	trap 0
small:
	trap 2
	trap 0
`, core.Options{InputBytes: 1}, false)
	if len(r.Paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(r.Paths))
	}
	_ = e
}

func TestTimeBudget(t *testing.T) {
	// An unbounded symbolic loop with a tiny wall-clock budget must stop
	// promptly rather than exhausting the path budget.
	_, r := analyze(t, "tiny32", `
_start:
	trap 1
loop:
	addi r1, r1, 1
	li   r2, 0
	bne  r1, r2, loop
	trap 0
`, core.Options{InputBytes: 1, MaxSteps: 1 << 30, TimeBudget: 20 * time.Millisecond}, false)
	if r.Stats.WallTime > 2*time.Second {
		t.Errorf("run took %v despite a 20ms budget", r.Stats.WallTime)
	}
	_ = r
}

// Exploration checkpoint/resume (docs/robustness.md, docs/service.md).
//
// A Snapshot captures everything a *serial* exploration needs to
// continue after a process crash: the completed paths, the bug list,
// the per-pc visit counts, the ID allocator and — the expensive part —
// the live frontier, each state's symbolic registers, memory overlay,
// path condition and output stream. All expression terms are flattened
// through the internal/expr wire format into one deterministic blob;
// the JSON metadata references terms by root index, so rehydration is a
// single expr.Parse into the resuming engine's builder followed by
// pointer wiring.
//
// Resume is bit-identical for deterministic strategies (DFS, BFS,
// Coverage): the frontier order, path signatures and ID allocator are
// restored exactly, so the remainder of the exploration completes the
// same paths with the same IDs, statuses and signatures as an
// uninterrupted run. Strategy Random resumes correctly but not
// bit-identically (the rng state is not serialized). Parallel runs
// (Workers > 1) do not checkpoint — their schedule is nondeterministic
// anyway — and Run rejects Resume for them; the service layer restarts
// such jobs from scratch instead. PathResult.End (CaptureEndState) is
// not serialized: restored completed paths carry End == nil.
package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"sort"
	"time"

	"repro/internal/expr"
	"repro/internal/prog"
)

// Snapshot file framing: "SXCK" | u32 version | u32 crc32(payload) |
// payload, where payload = u32 metaLen | meta JSON | u32 npaths |
// binary path records | u32 exprsLen | raw expr blob. Completed paths
// dominate a late-run snapshot (the frontier shrinks, the path list
// only grows) and are flat scalars plus root-index slices, so they get
// a dense binary encoding instead of JSON: checkpoints are written on
// a wall-clock pace and their cost is bounded by encoding throughput.
// The CRC makes torn or bit-rotted checkpoint files fail closed in
// UnmarshalSnapshot.
const (
	snapMagic   = "SXCK"
	snapVersion = 1
)

// ErrSnapshotMismatch is wrapped by resume errors caused by a snapshot
// taken for a different architecture or program image.
var ErrSnapshotMismatch = errors.New("core: snapshot does not match this engine's architecture/program")

// SnapPath is one completed path in a Snapshot. Cond and Out reference
// roots of the expression blob by index.
type SnapPath struct {
	ID        int        `json:"id"`
	Status    Status     `json:"status"`
	Fault     string     `json:"fault,omitempty"`
	EndPC     uint64     `json:"end_pc"`
	Steps     int64      `json:"steps"`
	Depth     int        `json:"depth"`
	Sig       uint64     `json:"sig"`
	Cond      []uint32   `json:"cond,omitempty"`
	Out       []uint32   `json:"out,omitempty"`
	PathFault *PathFault `json:"path_fault,omitempty"`
}

// SnapState is one live frontier state in a Snapshot. Regs has one root
// index per architecture register; OverlayAddrs/OverlayVals are the
// symbolic memory overlay as parallel slices in ascending address order
// (deterministic bytes for a given state).
type SnapState struct {
	ID           int      `json:"id"`
	Parent       int      `json:"parent"`
	PC           uint64   `json:"pc"`
	Steps        int64    `json:"steps"`
	Depth        int      `json:"depth"`
	InputCount   int      `json:"input_count"`
	Sig          uint64   `json:"sig"`
	Regs         []uint32 `json:"regs"`
	OverlayAddrs []uint64 `json:"overlay_addrs,omitempty"`
	OverlayVals  []uint32 `json:"overlay_vals,omitempty"`
	Cond         []uint32 `json:"cond,omitempty"`
	Out          []uint32 `json:"out,omitempty"`
}

// Snapshot is a resumable checkpoint of a serial exploration. Produce
// one through Options.Checkpoint, persist it with Marshal, rehydrate
// with UnmarshalSnapshot and hand it to Options.Resume.
type Snapshot struct {
	// Identity of the run the snapshot belongs to; Resume validates all
	// three against the resuming engine.
	Arch    string `json:"arch"`
	Entry   uint64 `json:"entry"`
	ProgSum uint64 `json:"prog_sum"`

	Strategy Strategy `json:"strategy"`

	Stats  Stats            `json:"stats"`
	NextID int              `json:"next_id"`
	Visits map[uint64]int64 `json:"visits,omitempty"`

	// Paths is framed as a binary section by Marshal, not JSON: it is
	// the size-dominant, append-only part of a snapshot.
	Paths []SnapPath `json:"-"`

	Bugs   []Bug       `json:"bugs,omitempty"`
	Faults []PathFault `json:"faults,omitempty"`

	// Frontier is the live state list in exploration-list order — the
	// order is load-bearing for deterministic strategies.
	Frontier []SnapState `json:"frontier"`

	// Exprs is the expr wire blob holding every term the snapshot
	// references. Framed as a raw binary section by Marshal (base64
	// through JSON would cost a third more space and an extra pass).
	Exprs []byte `json:"-"`
}

// progSum fingerprints a program image (FNV-1a over entry and
// segments) so a snapshot cannot be resumed against different code.
func progSum(p *prog.Program) uint64 {
	h := fnv.New64a()
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], p.Entry)
	h.Write(u64[:])
	for _, s := range p.Segments {
		binary.LittleEndian.PutUint64(u64[:], s.Addr)
		h.Write(u64[:])
		binary.LittleEndian.PutUint64(u64[:], uint64(len(s.Data)))
		h.Write(u64[:])
		h.Write(s.Data)
	}
	return h.Sum64()
}

// snapshot captures the engine's serial exploration state. live is the
// current frontier in list order; elapsed the wall time of this
// process's leg of the run.
func (e *Engine) snapshot(live []*State, elapsed time.Duration) *Snapshot {
	var roots []*expr.Expr
	ref := func(x *expr.Expr) uint32 {
		roots = append(roots, x)
		return uint32(len(roots) - 1)
	}
	refs := func(xs []*expr.Expr) []uint32 {
		if len(xs) == 0 {
			return nil
		}
		out := make([]uint32, len(xs))
		for i, x := range xs {
			out[i] = ref(x)
		}
		return out
	}

	s := &Snapshot{
		Arch:     e.Arch.Name,
		Entry:    e.Prog.Entry,
		ProgSum:  progSum(e.Prog),
		Strategy: e.Opts.Strategy,
		NextID:   e.nextID,
	}
	s.Visits = make(map[uint64]int64, len(e.visits))
	for pc, n := range e.visits {
		s.Visits[pc] = n
	}
	s.Bugs = append([]Bug(nil), e.report.Bugs...)
	s.Faults = append([]PathFault(nil), e.report.Faults...)
	for _, p := range e.report.Paths {
		s.Paths = append(s.Paths, SnapPath{
			ID:        p.ID,
			Status:    p.Status,
			Fault:     p.Fault,
			EndPC:     p.EndPC,
			Steps:     p.Steps,
			Depth:     p.Depth,
			Sig:       p.sig,
			Cond:      refs(p.PathCond),
			Out:       refs(p.Output),
			PathFault: p.PathFault,
		})
	}
	s.Frontier = make([]SnapState, 0, len(live))
	for _, st := range live {
		ss := SnapState{
			ID:         st.ID,
			Parent:     st.Parent,
			PC:         st.PC,
			Steps:      st.Steps,
			Depth:      st.Depth,
			InputCount: st.inputCount,
			Sig:        st.sig,
			Regs:       refs(st.regs),
			Cond:       refs(st.PathCond),
			Out:        refs(st.Output),
		}
		if n := len(st.mem.overlay); n > 0 {
			ss.OverlayAddrs = make([]uint64, 0, n)
			for a := range st.mem.overlay {
				ss.OverlayAddrs = append(ss.OverlayAddrs, a)
			}
			sort.Slice(ss.OverlayAddrs, func(i, j int) bool { return ss.OverlayAddrs[i] < ss.OverlayAddrs[j] })
			ss.OverlayVals = make([]uint32, n)
			for i, a := range ss.OverlayAddrs {
				ss.OverlayVals[i] = ref(st.mem.overlay[a])
			}
		}
		s.Frontier = append(s.Frontier, ss)
	}

	// Stats mid-run: the deferred end-of-run fills (solver, coverage,
	// compiled counters, wall time) have not happened yet — take them
	// from their live sources.
	e.snapshotCompileStats()
	st := e.report.Stats
	st.Solver = e.Solver.Stats
	st.Coverage = len(e.visits)
	st.WallTime = e.resumedWall + elapsed
	s.Stats = st

	s.Exprs = expr.Serialize(roots)
	return s
}

// restore rehydrates a snapshot into this (fresh) engine and returns
// the live frontier. The engine must have been built for the same
// architecture and program the snapshot was taken from.
func (e *Engine) restore(s *Snapshot) ([]*State, error) {
	if s.Arch != e.Arch.Name || s.Entry != e.Prog.Entry || s.ProgSum != progSum(e.Prog) {
		return nil, fmt.Errorf("%w: snapshot for %s entry %#x sum %#x, engine has %s entry %#x sum %#x",
			ErrSnapshotMismatch, s.Arch, s.Entry, s.ProgSum, e.Arch.Name, e.Prog.Entry, progSum(e.Prog))
	}
	roots, err := expr.Parse(e.B, s.Exprs)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot expression blob: %w", err)
	}
	get := func(i uint32) (*expr.Expr, error) {
		if int(i) >= len(roots) {
			return nil, fmt.Errorf("core: snapshot references root %d of %d", i, len(roots))
		}
		return roots[i], nil
	}
	gets := func(idx []uint32) ([]*expr.Expr, error) {
		if len(idx) == 0 {
			return nil, nil
		}
		out := make([]*expr.Expr, len(idx))
		for i, r := range idx {
			x, err := get(r)
			if err != nil {
				return nil, err
			}
			out[i] = x
		}
		return out, nil
	}

	e.report = Report{
		Bugs:   append([]Bug(nil), s.Bugs...),
		Faults: append([]PathFault(nil), s.Faults...),
		Stats:  s.Stats,
	}
	for _, p := range s.Paths {
		cond, err := gets(p.Cond)
		if err != nil {
			return nil, err
		}
		out, err := gets(p.Out)
		if err != nil {
			return nil, err
		}
		e.report.Paths = append(e.report.Paths, PathResult{
			ID:        p.ID,
			Status:    p.Status,
			Fault:     p.Fault,
			EndPC:     p.EndPC,
			Steps:     p.Steps,
			Depth:     p.Depth,
			PathCond:  cond,
			Output:    out,
			PathFault: p.PathFault,
			sig:       p.Sig,
		})
	}
	// Re-seed the bug dedup so a resumed exploration does not re-report
	// findings the interrupted leg already made.
	for _, b := range e.report.Bugs {
		e.bugSeen.first(dedupKey{check: b.Check, pc: b.PC, msg: b.Msg})
	}
	e.visits = make(map[uint64]int64, len(s.Visits))
	for pc, n := range s.Visits {
		e.visits[pc] = n
	}
	e.nextID = s.NextID
	e.resumedWall = s.Stats.WallTime
	e.Solver.Stats = s.Stats.Solver

	live := make([]*State, 0, len(s.Frontier))
	for i, ss := range s.Frontier {
		if len(ss.Regs) != len(e.Arch.Regs) {
			return nil, fmt.Errorf("core: snapshot frontier state %d has %d registers, architecture has %d",
				i, len(ss.Regs), len(e.Arch.Regs))
		}
		regs, err := gets(ss.Regs)
		if err != nil {
			return nil, err
		}
		for j, r := range e.Arch.Regs {
			if regs[j].Width() != r.Width {
				return nil, fmt.Errorf("core: snapshot register %s has width %d, want %d", r.Name, regs[j].Width(), r.Width)
			}
		}
		cond, err := gets(ss.Cond)
		if err != nil {
			return nil, err
		}
		out, err := gets(ss.Out)
		if err != nil {
			return nil, err
		}
		if len(ss.OverlayAddrs) != len(ss.OverlayVals) {
			return nil, fmt.Errorf("core: snapshot frontier state %d overlay addr/val length mismatch", i)
		}
		mem := newMemory(e.Prog.Image(), e.Arch.Bits)
		for k, a := range ss.OverlayAddrs {
			v, err := get(ss.OverlayVals[k])
			if err != nil {
				return nil, err
			}
			if v.Width() != 8 {
				return nil, fmt.Errorf("core: snapshot overlay byte at %#x has width %d", a, v.Width())
			}
			mem.overlay[a&mem.mask] = v
		}
		live = append(live, &State{
			ID:         ss.ID,
			Parent:     ss.Parent,
			regs:       regs,
			mem:        mem,
			PathCond:   cond,
			PC:         ss.PC,
			Steps:      ss.Steps,
			Depth:      ss.Depth,
			Output:     out,
			inputCount: ss.InputCount,
			sig:        ss.Sig,
			home:       e.B,
		})
	}
	// Seed the live-progress counters so mid-run observers see
	// run-cumulative values rather than post-crash deltas.
	e.progress.restore(ProgressSnapshot{
		Instructions:  s.Stats.Instructions,
		Paths:         int64(s.Stats.PathsDone),
		Forks:         s.Stats.Forks,
		Frontier:      int64(len(live)),
		Covered:       int64(len(e.visits)),
		Degraded:      s.Stats.Degraded.Total(),
		SolverNS:      int64(s.Stats.Solver.SolveTime),
		SolverQueries: s.Stats.Solver.Queries,
		CacheHits:     s.Stats.Solver.CacheHits,
	})
	return live, nil
}

// appendString emits a length-prefixed string (u32 length).
func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// appendRoots emits a root-index slice (u32 count + u32 indices).
func appendRoots(buf []byte, idx []uint32) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(idx)))
	for _, i := range idx {
		buf = binary.LittleEndian.AppendUint32(buf, i)
	}
	return buf
}

// appendPath emits one completed path's binary record.
func appendPath(buf []byte, p *SnapPath) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(p.ID))
	buf = append(buf, byte(p.Status))
	buf = appendString(buf, p.Fault)
	buf = binary.LittleEndian.AppendUint64(buf, p.EndPC)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Steps))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Depth))
	buf = binary.LittleEndian.AppendUint64(buf, p.Sig)
	buf = appendRoots(buf, p.Cond)
	buf = appendRoots(buf, p.Out)
	if p.PathFault == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = binary.LittleEndian.AppendUint64(buf, p.PathFault.PC)
	buf = appendString(buf, p.PathFault.Layer)
	buf = appendString(buf, p.PathFault.Msg)
	return appendString(buf, p.PathFault.Stack)
}

// snapReader walks the binary sections of a snapshot payload. The CRC
// has already been verified; length checks here only guard against a
// logically malformed (not bit-rotted) file.
type snapReader struct {
	b   []byte
	off int
}

var errSnapShort = errors.New("core: snapshot payload truncated")

func (r *snapReader) bytes(n int) ([]byte, error) {
	if n < 0 || len(r.b)-r.off < n {
		return nil, errSnapShort
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *snapReader) u8() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *snapReader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *snapReader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *snapReader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *snapReader) roots() ([]uint32, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	// A root index is 4 bytes on the wire, so n is bounded by what is
	// actually left — rejects hostile counts before allocating.
	if int64(n)*4 > int64(len(r.b)-r.off) {
		return nil, errSnapShort
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]uint32, n)
	for i := range out {
		if out[i], err = r.u32(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *snapReader) path() (SnapPath, error) {
	var p SnapPath
	id, err := r.u64()
	if err != nil {
		return p, err
	}
	p.ID = int(id)
	st, err := r.u8()
	if err != nil {
		return p, err
	}
	p.Status = Status(st)
	if p.Fault, err = r.str(); err != nil {
		return p, err
	}
	if p.EndPC, err = r.u64(); err != nil {
		return p, err
	}
	steps, err := r.u64()
	if err != nil {
		return p, err
	}
	p.Steps = int64(steps)
	depth, err := r.u32()
	if err != nil {
		return p, err
	}
	p.Depth = int(depth)
	if p.Sig, err = r.u64(); err != nil {
		return p, err
	}
	if p.Cond, err = r.roots(); err != nil {
		return p, err
	}
	if p.Out, err = r.roots(); err != nil {
		return p, err
	}
	hasFault, err := r.u8()
	if err != nil {
		return p, err
	}
	if hasFault == 0 {
		return p, nil
	}
	var pf PathFault
	if pf.PC, err = r.u64(); err != nil {
		return p, err
	}
	if pf.Layer, err = r.str(); err != nil {
		return p, err
	}
	if pf.Msg, err = r.str(); err != nil {
		return p, err
	}
	if pf.Stack, err = r.str(); err != nil {
		return p, err
	}
	p.PathFault = &pf
	return p, nil
}

// pathWireSize is the exact on-wire size of one path record, so
// Marshal can allocate its buffer once (checkpoints are taken on the
// exploration goroutine — reallocation churn there is GC pressure on
// the whole run).
func pathWireSize(p *SnapPath) int {
	n := 8 + 1 + (4 + len(p.Fault)) + 8 + 8 + 4 + 8 +
		(4 + 4*len(p.Cond)) + (4 + 4*len(p.Out)) + 1
	if p.PathFault != nil {
		n += 8 + (4 + len(p.PathFault.Layer)) + (4 + len(p.PathFault.Msg)) + (4 + len(p.PathFault.Stack))
	}
	return n
}

// Marshal frames the snapshot for durable storage: "SXCK" | u32
// version | u32 crc32(payload) | payload. See the framing comment at
// the top of the file for the payload sections.
func (s *Snapshot) Marshal() ([]byte, error) {
	meta, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("core: marshal snapshot: %w", err)
	}
	hdr := len(snapMagic) + 8
	size := hdr + 4 + len(meta) + 4 + 4 + len(s.Exprs)
	for i := range s.Paths {
		size += pathWireSize(&s.Paths[i])
	}
	buf := make([]byte, hdr, size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(meta)))
	buf = append(buf, meta...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Paths)))
	for i := range s.Paths {
		buf = appendPath(buf, &s.Paths[i])
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Exprs)))
	buf = append(buf, s.Exprs...)
	if len(buf) != size {
		return nil, fmt.Errorf("core: marshal snapshot: sized %d, wrote %d", size, len(buf))
	}
	copy(buf, snapMagic)
	binary.LittleEndian.PutUint32(buf[4:], snapVersion)
	binary.LittleEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(buf[hdr:]))
	return buf, nil
}

// UnmarshalSnapshot validates the framing (magic, version, CRC) and
// decodes a snapshot. A torn, truncated or bit-flipped checkpoint file
// fails here — never inside a resuming run.
func UnmarshalSnapshot(data []byte) (*Snapshot, error) {
	hdr := len(snapMagic) + 8
	if len(data) < hdr {
		return nil, errors.New("core: snapshot too short")
	}
	if string(data[:4]) != snapMagic {
		return nil, fmt.Errorf("core: bad snapshot magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != snapVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", v)
	}
	payload := data[hdr:]
	if crc := binary.LittleEndian.Uint32(data[8:]); crc != crc32.ChecksumIEEE(payload) {
		return nil, errors.New("core: snapshot CRC mismatch")
	}
	r := &snapReader{b: payload}
	metaLen, err := r.u32()
	if err != nil {
		return nil, err
	}
	meta, err := r.bytes(int(metaLen))
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(meta, &s); err != nil {
		return nil, fmt.Errorf("core: decode snapshot: %w", err)
	}
	npaths, err := r.u32()
	if err != nil {
		return nil, err
	}
	// A path record is at least 46 bytes on the wire; bound the
	// allocation by what is actually left.
	if int64(npaths)*46 > int64(len(r.b)-r.off) {
		return nil, errSnapShort
	}
	if npaths > 0 {
		s.Paths = make([]SnapPath, 0, npaths)
		for i := uint32(0); i < npaths; i++ {
			p, err := r.path()
			if err != nil {
				return nil, fmt.Errorf("core: decode snapshot path %d: %w", i, err)
			}
			s.Paths = append(s.Paths, p)
		}
	}
	exprsLen, err := r.u32()
	if err != nil {
		return nil, err
	}
	exprs, err := r.bytes(int(exprsLen))
	if err != nil {
		return nil, err
	}
	if exprsLen > 0 {
		s.Exprs = append([]byte(nil), exprs...)
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("core: snapshot has %d trailing bytes", len(r.b)-r.off)
	}
	return &s, nil
}

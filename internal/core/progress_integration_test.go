package core_test

import (
	"testing"

	"repro/arch"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/profile"
)

// TestProgressMatchesStats checks that the live-progress counters, read
// after the run, agree exactly with the engine's own Stats — the
// progress block must not drop or double-count events across serial
// runs, parallel worker shards, or the profiler fan-out. The parallel
// case is the -race workout for the atomic counter block.
func TestProgressMatchesStats(t *testing.T) {
	src := harness.BranchLadder("tiny32", 7)
	for _, tc := range []struct {
		name    string
		workers int
		profile bool
	}{
		{"serial", 1, false},
		{"parallel", 4, false},
		{"parallel-with-profiler", 4, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog := &core.Progress{}
			opts := core.Options{InputBytes: 7, MaxPaths: 5000, Workers: tc.workers, Progress: prog}
			if tc.profile {
				opts.Profile = profile.New(profile.Meta{ADL: "tiny32"})
			}
			p := build(t, "tiny32", src)
			e := core.NewEngine(arch.MustLoad("tiny32"), p, opts)
			r, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			s := prog.Snapshot()
			if s.Instructions != r.Stats.Instructions {
				t.Errorf("Instructions = %d, want %d", s.Instructions, r.Stats.Instructions)
			}
			if s.Paths != int64(r.Stats.PathsDone) {
				t.Errorf("Paths = %d, want %d", s.Paths, r.Stats.PathsDone)
			}
			if s.Forks != r.Stats.Forks {
				t.Errorf("Forks = %d, want %d", s.Forks, r.Stats.Forks)
			}
			if s.Covered != int64(r.Stats.Coverage) {
				t.Errorf("Covered = %d, want %d", s.Covered, r.Stats.Coverage)
			}
			if s.SolverQueries != r.Stats.Solver.Queries {
				t.Errorf("SolverQueries = %d, want %d", s.SolverQueries, r.Stats.Solver.Queries)
			}
			if s.CacheHits != r.Stats.Solver.CacheHits {
				t.Errorf("CacheHits = %d, want %d", s.CacheHits, r.Stats.Solver.CacheHits)
			}
			if s.SolverQueries > s.CacheHits && s.SolverNS == 0 {
				t.Error("solved queries recorded but zero solver time")
			}
			if s.Frontier != 0 {
				t.Errorf("Frontier = %d after run end, want 0", s.Frontier)
			}
		})
	}
}

// TestProgressConcolic checks the concolic loop feeds the paths counter
// per completed concrete run.
func TestProgressConcolic(t *testing.T) {
	prog := &core.Progress{}
	p := build(t, "tiny32", harness.BranchLadder("tiny32", 4))
	e := core.NewEngine(arch.MustLoad("tiny32"), p,
		core.Options{InputBytes: 4, Progress: prog})
	r, err := e.Concolic(nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Snapshot().Paths; got != int64(len(r.Paths)) {
		t.Errorf("Paths = %d, want %d concrete runs", got, len(r.Paths))
	}
}

// TestProgressNil exercises every nil-receiver path: a run with no
// Progress attached must not touch a progress block, and snapshotting a
// nil block must return zeros.
func TestProgressNil(t *testing.T) {
	var p *core.Progress
	if s := p.Snapshot(); s != (core.ProgressSnapshot{}) {
		t.Errorf("nil Snapshot = %+v, want zero", s)
	}
}

package core_test

import (
	"sort"
	"strings"
	"testing"
	"time"

	"repro/arch"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/harness"
)

// faultKey is the schedule-independent fingerprint of one recovered
// fault (the stack capture varies by goroutine, so it is excluded).
func faultKey(f core.PathFault) string {
	return f.String()
}

func faultKeys(r *core.Report) []string {
	out := make([]string, len(r.Faults))
	for i, f := range r.Faults {
		out[i] = faultKey(f)
	}
	sort.Strings(out)
	return out
}

// TestPanicIsolationParallel: with panics injected into the symbolic
// step at a fixed rate, a parallel run must complete normally — each
// panic kills only its own path, siblings still finish, and every
// fault is reported with layer and stack. Run under -race by the race
// tier.
func TestPanicIsolationParallel(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		inj := faultinject.New(9, 60).Enable(faultinject.SiteSymStep, faultinject.KindPanic)
		p := build(t, "tiny32", harness.BranchLadder("tiny32", 6))
		e := core.NewEngine(arch.MustLoad("tiny32"), p, core.Options{
			InputBytes: 6,
			MaxPaths:   5000,
			Workers:    workers,
			Inject:     inj,
		})
		r, err := e.Run()
		if err != nil {
			t.Fatalf("workers=%d: run failed under injection: %v", workers, err)
		}
		if len(r.Faults) == 0 {
			t.Fatalf("workers=%d: no faults recorded (calls=%d)", workers, inj.Calls(faultinject.SiteSymStep))
		}
		if r.Stats.PathFaults != int64(len(r.Faults)) {
			t.Errorf("workers=%d: Stats.PathFaults=%d, len(Faults)=%d", workers, r.Stats.PathFaults, len(r.Faults))
		}
		fired := inj.Fired(faultinject.SiteSymStep, faultinject.KindPanic)
		if fired != int64(len(r.Faults)) {
			t.Errorf("workers=%d: fired %d panics, recorded %d faults", workers, fired, len(r.Faults))
		}
		if s := inj.Surfaced(faultinject.SiteSymStep); s != fired {
			t.Errorf("workers=%d: fired %d, surfaced %d", workers, fired, s)
		}
		for _, f := range r.Faults {
			if f.Layer != "sym" {
				t.Errorf("workers=%d: fault layer %q, want sym", workers, f.Layer)
			}
			if f.Msg == "" || f.Stack == "" {
				t.Errorf("workers=%d: fault missing msg or stack: %+v", workers, f)
			}
		}
		// Sibling paths keep completing: the panic rate (1 in 60 steps)
		// leaves most of the ladder's 64 halting paths alive.
		var panicked, survived int
		for _, p := range r.Paths {
			switch p.Status {
			case core.StatusPanic:
				panicked++
				if p.PathFault == nil {
					t.Errorf("workers=%d: StatusPanic path without PathFault", workers)
				}
			case core.StatusHalt, core.StatusExit:
				survived++
			}
		}
		if panicked != len(r.Faults) {
			t.Errorf("workers=%d: %d StatusPanic paths, %d faults", workers, panicked, len(r.Faults))
		}
		if survived == 0 {
			t.Errorf("workers=%d: no sibling path survived injection", workers)
		}
	}
}

// TestFaultReplayDeterministic: the same seed and options replay the
// exact same faults (pc, layer, message) and degradations.
func TestFaultReplayDeterministic(t *testing.T) {
	run := func() *core.Report {
		inj := faultinject.New(4, 8).
			Enable(faultinject.SiteSymStep, faultinject.KindPanic).
			Enable(faultinject.SiteSolver, faultinject.KindBudget, faultinject.KindDeadline)
		p := build(t, "tiny32", harness.BranchLadder("tiny32", 5))
		e := core.NewEngine(arch.MustLoad("tiny32"), p, core.Options{
			InputBytes: 5,
			MaxPaths:   5000,
			Inject:     inj,
		})
		r, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Stats.PathFaults == 0 {
		t.Fatalf("injection never fired; tune the period")
	}
	if a.Stats.PathFaults != b.Stats.PathFaults {
		t.Fatalf("PathFaults %d vs %d across identical runs", a.Stats.PathFaults, b.Stats.PathFaults)
	}
	if !equalStrings(faultKeys(a), faultKeys(b)) {
		t.Fatalf("fault sets differ across identical runs:\n%v\nvs\n%v", faultKeys(a), faultKeys(b))
	}
	if a.Stats.Degraded != b.Stats.Degraded {
		t.Fatalf("degradation stats differ: %v vs %v", a.Stats.Degraded, b.Stats.Degraded)
	}
	if a.Stats.Degraded.Total() == 0 {
		t.Fatalf("injected solver budget/deadline faults never degraded")
	}
}

// TestSolverDeadlineOverApproximates: an already-expired per-query
// deadline must not drop paths or fail the run — every branch
// feasibility check degrades to keeping both sides, so the full
// branch tree is still explored.
func TestSolverDeadlineOverApproximates(t *testing.T) {
	p := build(t, "tiny32", harness.BranchLadder("tiny32", 4))
	e := core.NewEngine(arch.MustLoad("tiny32"), p, core.Options{
		InputBytes:     4,
		MaxPaths:       5000,
		SolverDeadline: time.Nanosecond,
	})
	r, err := e.Run()
	if err != nil {
		t.Fatalf("deadline expiry must degrade, not error: %v", err)
	}
	if r.Stats.Degraded.Total() == 0 {
		t.Fatalf("no degradations recorded under 1ns deadline")
	}
	if r.Stats.Degraded[core.DegradeBranchDeadline] == 0 {
		t.Errorf("branch-deadline cause not counted: %v", r.Stats.Degraded)
	}
	// Over-approximation keeps both sides of every branch: at least as
	// many paths as a normal run of the 4-rung ladder (16 halting).
	if len(r.Paths) < 16 {
		t.Errorf("only %d paths explored under deadline, want >= 16 (both branch sides kept)", len(r.Paths))
	}
	if r.Stats.PathFaults != 0 {
		t.Errorf("deadline degradation must not record faults, got %d", r.Stats.PathFaults)
	}
}

// TestMaxStateTermsKillsGreedyStates: the per-state term budget kills
// oversized states gracefully (StatusKilled, state-terms cause) while
// the run completes.
func TestMaxStateTermsKillsGreedyStates(t *testing.T) {
	p := build(t, "tiny32", harness.BranchLadder("tiny32", 6))
	e := core.NewEngine(arch.MustLoad("tiny32"), p, core.Options{
		InputBytes:    6,
		MaxPaths:      5000,
		MaxStateTerms: 3,
	})
	r, err := e.Run()
	if err != nil {
		t.Fatalf("term budget must degrade, not error: %v", err)
	}
	if r.Stats.Degraded[core.DegradeStateBudget] == 0 {
		t.Fatalf("no state-terms degradations on a 6-rung ladder with budget 3")
	}
	var killed int
	for _, pr := range r.Paths {
		if pr.Status == core.StatusKilled && strings.Contains(pr.Fault, "term budget") {
			killed++
		}
	}
	if killed == 0 {
		t.Fatalf("no path reports the term-budget kill")
	}
	if int64(killed) != r.Stats.Degraded[core.DegradeStateBudget] {
		t.Errorf("killed %d paths, counted %d state-terms degradations", killed, r.Stats.Degraded[core.DegradeStateBudget])
	}
}

package core_test

import (
	"errors"
	"testing"

	"repro/arch"
	"repro/internal/checker"
	"repro/internal/core"
)

// resumeSrc explores 2^3 = 8 paths over three symbolic input bytes,
// with a division finding on the path where the first byte is zero —
// enough exploration iterations that a mid-run checkpoint lands in
// interesting territory.
const resumeSrc = `
_start:
	li   r5, 0
	li   r6, 0
loop:
	trap 1
	li   r2, 65
	divu r3, r2, r1
	bne  r1, r2, skip
	addi r5, r5, 1
	trap 2
skip:
	addi r6, r6, 1
	li   r7, 4
	bne  r6, r7, loop
	trap 0
`

func resumeOpts() core.Options {
	return core.Options{InputBytes: 3, Strategy: core.DFS}
}

// assertSameReport compares the canonical, schedule-independent report
// fields: per-path identity (ID, signature, status, end state shape)
// in completion order, the bug list, and the deterministic counters.
// Wall-clock and solver-time fields are excluded.
func assertSameReport(t *testing.T, want, got *core.Report) {
	t.Helper()
	if len(got.Paths) != len(want.Paths) {
		t.Fatalf("paths = %d, want %d", len(got.Paths), len(want.Paths))
	}
	for i := range want.Paths {
		w, g := &want.Paths[i], &got.Paths[i]
		if g.ID != w.ID || g.Sig() != w.Sig() || g.Status != w.Status || g.Fault != w.Fault ||
			g.EndPC != w.EndPC || g.Steps != w.Steps || g.Depth != w.Depth {
			t.Errorf("path %d: got {id=%d sig=%#x %v %q pc=%#x steps=%d depth=%d}, want {id=%d sig=%#x %v %q pc=%#x steps=%d depth=%d}",
				i, g.ID, g.Sig(), g.Status, g.Fault, g.EndPC, g.Steps, g.Depth,
				w.ID, w.Sig(), w.Status, w.Fault, w.EndPC, w.Steps, w.Depth)
		}
		if len(g.PathCond) != len(w.PathCond) || len(g.Output) != len(w.Output) {
			t.Errorf("path %d: cond/out lengths %d/%d, want %d/%d",
				i, len(g.PathCond), len(g.Output), len(w.PathCond), len(w.Output))
			continue
		}
		for j := range w.PathCond {
			if g.PathCond[j].Digest() != w.PathCond[j].Digest() {
				t.Errorf("path %d cond %d: digest mismatch", i, j)
			}
		}
		for j := range w.Output {
			if g.Output[j].Digest() != w.Output[j].Digest() {
				t.Errorf("path %d out %d: digest mismatch", i, j)
			}
		}
	}
	if len(got.Bugs) != len(want.Bugs) {
		t.Fatalf("bugs = %d, want %d", len(got.Bugs), len(want.Bugs))
	}
	for i := range want.Bugs {
		w, g := &want.Bugs[i], &got.Bugs[i]
		if g.Check != w.Check || g.PC != w.PC || g.Msg != w.Msg || g.PathID != w.PathID ||
			g.FoundAt != w.FoundAt || string(g.Input) != string(w.Input) {
			t.Errorf("bug %d: got %+v, want %+v", i, *g, *w)
		}
	}
	ws, gs := want.Stats, got.Stats
	if gs.Instructions != ws.Instructions || gs.Forks != ws.Forks || gs.Infeasible != ws.Infeasible ||
		gs.PathsDone != ws.PathsDone || gs.Coverage != ws.Coverage || gs.MaxDepth != ws.MaxDepth {
		t.Errorf("stats: got insn=%d forks=%d infeasible=%d paths=%d cover=%d depth=%d, want insn=%d forks=%d infeasible=%d paths=%d cover=%d depth=%d",
			gs.Instructions, gs.Forks, gs.Infeasible, gs.PathsDone, gs.Coverage, gs.MaxDepth,
			ws.Instructions, ws.Forks, ws.Infeasible, ws.PathsDone, ws.Coverage, ws.MaxDepth)
	}
}

// TestCheckpointResumeBitIdentical: interrupting a serial exploration
// at an arbitrary checkpoint and resuming it in a fresh engine must
// produce the same report, path for path, as the uninterrupted run.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	a := arch.MustLoad("tiny32")
	p := build(t, "tiny32", resumeSrc)

	run := func(opts core.Options) *core.Report {
		e := core.NewEngine(a, p, opts)
		for _, c := range checker.All() {
			e.AddChecker(c)
		}
		r, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	want := run(resumeOpts())
	if len(want.Paths) < 8 || len(want.Bugs) == 0 {
		t.Fatalf("baseline not interesting enough: %d paths, %d bugs", len(want.Paths), len(want.Bugs))
	}

	// Re-run with per-iteration checkpoints; the run itself must be
	// unperturbed.
	var snaps []*core.Snapshot
	opts := resumeOpts()
	opts.CheckpointEvery = -1 // dense: every opportunity
	opts.Checkpoint = func(s *core.Snapshot) { snaps = append(snaps, s) }
	assertSameReport(t, want, run(opts))
	if len(snaps) < 3 {
		t.Fatalf("only %d checkpoints taken", len(snaps))
	}

	// Resume from several cut points, through the durable wire form.
	for _, idx := range []int{0, len(snaps) / 3, len(snaps) / 2, len(snaps) - 1} {
		blob, err := snaps[idx].Marshal()
		if err != nil {
			t.Fatal(err)
		}
		snap, err := core.UnmarshalSnapshot(blob)
		if err != nil {
			t.Fatalf("checkpoint %d: %v", idx, err)
		}
		ropts := resumeOpts()
		ropts.Resume = snap
		assertSameReport(t, want, run(ropts))
	}
}

// TestSnapshotCorruptionRejected: every single-byte corruption and
// truncation of a marshaled snapshot must fail in UnmarshalSnapshot —
// a damaged checkpoint can never leak into a resuming run.
func TestSnapshotCorruptionRejected(t *testing.T) {
	a := arch.MustLoad("tiny32")
	p := build(t, "tiny32", resumeSrc)
	var snap *core.Snapshot
	opts := resumeOpts()
	opts.CheckpointEvery = -1 // dense: every opportunity
	opts.Checkpoint = func(s *core.Snapshot) {
		if snap == nil {
			snap = s
		}
	}
	if _, err := core.NewEngine(a, p, opts).Run(); err != nil {
		t.Fatal(err)
	}
	blob, err := snap.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.UnmarshalSnapshot(blob); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	for i := 0; i < len(blob); i++ {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x41
		if _, err := core.UnmarshalSnapshot(mut); err == nil {
			t.Fatalf("byte %d corrupted: snapshot accepted", i)
		}
	}
	for _, n := range []int{0, 3, len(blob) / 2, len(blob) - 1} {
		if _, err := core.UnmarshalSnapshot(blob[:n]); err == nil {
			t.Fatalf("truncated to %d bytes: snapshot accepted", n)
		}
	}
}

// TestResumeValidation: a snapshot only resumes on an engine built for
// the same program, and never on a parallel run.
func TestResumeValidation(t *testing.T) {
	a := arch.MustLoad("tiny32")
	p := build(t, "tiny32", resumeSrc)
	var snap *core.Snapshot
	opts := resumeOpts()
	opts.CheckpointEvery = -1 // dense: every opportunity
	opts.Checkpoint = func(s *core.Snapshot) {
		if snap == nil {
			snap = s
		}
	}
	if _, err := core.NewEngine(a, p, opts).Run(); err != nil {
		t.Fatal(err)
	}

	other := build(t, "tiny32", "_start:\n\tli r1, 1\n\thalt\n")
	ropts := resumeOpts()
	ropts.Resume = snap
	if _, err := core.NewEngine(a, other, ropts).Run(); !errors.Is(err, core.ErrSnapshotMismatch) {
		t.Errorf("resume against different program: err = %v, want ErrSnapshotMismatch", err)
	}

	popts := resumeOpts()
	popts.Resume = snap
	popts.Workers = 4
	if _, err := core.NewEngine(a, p, popts).Run(); err == nil {
		t.Error("parallel resume accepted")
	}
}

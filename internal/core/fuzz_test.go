package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/arch"
	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/expr"
)

// genTiny32 generates a random but well-formed tiny32 program: a few
// symbolic input reads, a soup of ALU and fixed-address memory
// operations over r3..r10, forward branches, and finally a dump of every
// working register through the output trap. The dump makes the whole
// register state observable, so comparing outputs compares semantics.
func genTiny32(r *rand.Rand, nOps int) string {
	var sb strings.Builder
	sb.WriteString("scratch:\t.space 64\n_start:\n")
	regs := []string{"r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10"}
	reg := func() string { return regs[r.Intn(len(regs))] }
	// Seed registers: some constants, some input bytes.
	for i, rg := range regs {
		if i%2 == 0 {
			fmt.Fprintf(&sb, "\ttrap 1\n\tmov %s, r1\n", rg)
		} else {
			fmt.Fprintf(&sb, "\tli %s, %d\n", rg, r.Intn(1<<15))
		}
	}
	label := 0
	for i := 0; i < nOps; i++ {
		switch r.Intn(12) {
		case 0:
			fmt.Fprintf(&sb, "\tadd %s, %s, %s\n", reg(), reg(), reg())
		case 1:
			fmt.Fprintf(&sb, "\tsub %s, %s, %s\n", reg(), reg(), reg())
		case 2:
			fmt.Fprintf(&sb, "\tmul %s, %s, %s\n", reg(), reg(), reg())
		case 3:
			fmt.Fprintf(&sb, "\txor %s, %s, %s\n", reg(), reg(), reg())
		case 4:
			fmt.Fprintf(&sb, "\tand %s, %s, %s\n", reg(), reg(), reg())
		case 5:
			fmt.Fprintf(&sb, "\tor %s, %s, %s\n", reg(), reg(), reg())
		case 6:
			fmt.Fprintf(&sb, "\tslli %s, %s, %d\n", reg(), reg(), r.Intn(31))
		case 7:
			fmt.Fprintf(&sb, "\tsrai %s, %s, %d\n", reg(), reg(), r.Intn(31))
		case 8:
			fmt.Fprintf(&sb, "\taddi %s, %s, %d\n", reg(), reg(), r.Intn(1<<15)-1<<14)
		case 9:
			// Fixed-address store + load within the scratch buffer.
			off := r.Intn(15) * 4
			fmt.Fprintf(&sb, "\tsw %s, scratch+%d(r0)\n", reg(), off)
			fmt.Fprintf(&sb, "\tlw %s, scratch+%d(r0)\n", reg(), off)
		case 10:
			fmt.Fprintf(&sb, "\tsltu %s, %s, %s\n", reg(), reg(), reg())
		default:
			// Forward branch over the next few operations.
			ops := []string{"beq", "bne", "blt", "bltu", "bge", "bgeu"}
			fmt.Fprintf(&sb, "\t%s %s, %s, fwd%d\n", ops[r.Intn(len(ops))], reg(), reg(), label)
			fmt.Fprintf(&sb, "\taddi %s, %s, 1\n", reg(), reg())
			fmt.Fprintf(&sb, "fwd%d:\n", label)
			label++
		}
	}
	// Dump every working register, all four bytes.
	for _, rg := range regs {
		for sh := 0; sh < 32; sh += 8 {
			fmt.Fprintf(&sb, "\tsrli r1, %s, %d\n\ttrap 2\n", rg, sh)
		}
	}
	sb.WriteString("\ttrap 0\n")
	return sb.String()
}

// TestFuzzDifferential is the randomized end-to-end oracle: for random
// programs and random inputs, the concrete emulator and the symbolic
// engine (evaluated under the matching model) must produce identical
// outputs.
func TestFuzzDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	a := arch.MustLoad("tiny32")
	iters := 30
	if testing.Short() {
		iters = 5
	}
	for iter := 0; iter < iters; iter++ {
		src := genTiny32(r, 12)
		p := build(t, "tiny32", src)

		input := make([]byte, 4)
		for i := range input {
			input[i] = byte(r.Uint32())
		}
		env := expr.Env{}
		for i, b := range input {
			env[fmt.Sprintf("in%d", i)] = uint64(b)
		}

		// Concrete run.
		m := conc.NewMachine(a)
		m.LoadProgram(p)
		m.Input = input
		stop := m.Run(100000)
		if stop.Kind != conc.StopExit {
			t.Fatalf("iter %d: concrete run %v\n%s", iter, stop, src)
		}

		// Symbolic run: find the path consistent with the input.
		e := core.NewEngine(a, p, core.Options{InputBytes: 4, MaxSteps: 5000, MaxPaths: 200})
		rep, err := e.Run()
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		var match *core.PathResult
		for i := range rep.Paths {
			pth := &rep.Paths[i]
			if pth.Status != core.StatusExit {
				continue
			}
			ok := true
			for _, c := range pth.PathCond {
				if !expr.EvalBool(c, env) {
					ok = false
					break
				}
			}
			if ok {
				match = pth
				break
			}
		}
		if match == nil {
			t.Fatalf("iter %d: no symbolic path matches input %v (%d paths)\n%s",
				iter, input, len(rep.Paths), src)
		}
		var got []byte
		for _, o := range match.Output {
			got = append(got, byte(expr.Eval(o, env)))
		}
		if string(got) != string(m.Output) {
			t.Fatalf("iter %d input %v:\nconcrete % x\nsymbolic % x\n%s",
				iter, input, m.Output, got, src)
		}
	}
}

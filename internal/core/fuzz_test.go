package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/arch"
	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/expr"
)

// genTiny32 generates a random but well-formed tiny32 program: a few
// symbolic input reads, a soup of ALU and fixed-address memory
// operations over r3..r10, forward branches, and finally a dump of every
// working register through the output trap. The dump makes the whole
// register state observable, so comparing outputs compares semantics.
func genTiny32(r *rand.Rand, nOps int) string {
	var sb strings.Builder
	sb.WriteString("scratch:\t.space 64\n_start:\n")
	regs := []string{"r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10"}
	reg := func() string { return regs[r.Intn(len(regs))] }
	// Seed registers: some constants, some input bytes.
	for i, rg := range regs {
		if i%2 == 0 {
			fmt.Fprintf(&sb, "\ttrap 1\n\tmov %s, r1\n", rg)
		} else {
			fmt.Fprintf(&sb, "\tli %s, %d\n", rg, r.Intn(1<<15))
		}
	}
	label := 0
	for i := 0; i < nOps; i++ {
		switch r.Intn(12) {
		case 0:
			fmt.Fprintf(&sb, "\tadd %s, %s, %s\n", reg(), reg(), reg())
		case 1:
			fmt.Fprintf(&sb, "\tsub %s, %s, %s\n", reg(), reg(), reg())
		case 2:
			fmt.Fprintf(&sb, "\tmul %s, %s, %s\n", reg(), reg(), reg())
		case 3:
			fmt.Fprintf(&sb, "\txor %s, %s, %s\n", reg(), reg(), reg())
		case 4:
			fmt.Fprintf(&sb, "\tand %s, %s, %s\n", reg(), reg(), reg())
		case 5:
			fmt.Fprintf(&sb, "\tor %s, %s, %s\n", reg(), reg(), reg())
		case 6:
			fmt.Fprintf(&sb, "\tslli %s, %s, %d\n", reg(), reg(), r.Intn(31))
		case 7:
			fmt.Fprintf(&sb, "\tsrai %s, %s, %d\n", reg(), reg(), r.Intn(31))
		case 8:
			fmt.Fprintf(&sb, "\taddi %s, %s, %d\n", reg(), reg(), r.Intn(1<<15)-1<<14)
		case 9:
			// Fixed-address store + load within the scratch buffer.
			off := r.Intn(15) * 4
			fmt.Fprintf(&sb, "\tsw %s, scratch+%d(r0)\n", reg(), off)
			fmt.Fprintf(&sb, "\tlw %s, scratch+%d(r0)\n", reg(), off)
		case 10:
			fmt.Fprintf(&sb, "\tsltu %s, %s, %s\n", reg(), reg(), reg())
		default:
			// Forward branch over the next few operations.
			ops := []string{"beq", "bne", "blt", "bltu", "bge", "bgeu"}
			fmt.Fprintf(&sb, "\t%s %s, %s, fwd%d\n", ops[r.Intn(len(ops))], reg(), reg(), label)
			fmt.Fprintf(&sb, "\taddi %s, %s, 1\n", reg(), reg())
			fmt.Fprintf(&sb, "fwd%d:\n", label)
			label++
		}
	}
	// Dump every working register, all four bytes.
	for _, rg := range regs {
		for sh := 0; sh < 32; sh += 8 {
			fmt.Fprintf(&sb, "\tsrli r1, %s, %d\n\ttrap 2\n", rg, sh)
		}
	}
	sb.WriteString("\ttrap 0\n")
	return sb.String()
}

// diffTiny32 runs the program generated from progSeed through the
// concrete emulator and the symbolic engine and compares the outputs
// under the model matching input. It skips (returns) when the engine's
// path budget truncated exploration, since path coverage is then
// unreliable.
func diffTiny32(t *testing.T, progSeed int64, input []byte) {
	t.Helper()
	a := arch.MustLoad("tiny32")
	src := genTiny32(rand.New(rand.NewSource(progSeed)), 12)
	p := build(t, "tiny32", src)

	env := expr.Env{}
	for i, b := range input {
		env[fmt.Sprintf("in%d", i)] = uint64(b)
	}

	// Concrete run.
	m := conc.NewMachine(a)
	m.LoadProgram(p)
	m.Input = input
	stop := m.Run(100000)
	if stop.Kind != conc.StopExit {
		t.Fatalf("concrete run %v\n%s", stop, src)
	}

	// Symbolic run: find the path consistent with the input.
	e := core.NewEngine(a, p, core.Options{InputBytes: 4, MaxSteps: 5000, MaxPaths: 200})
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var match *core.PathResult
	for i := range rep.Paths {
		pth := &rep.Paths[i]
		if pth.Status != core.StatusExit {
			continue
		}
		ok := true
		for _, c := range pth.PathCond {
			if !expr.EvalBool(c, env) {
				ok = false
				break
			}
		}
		if ok {
			match = pth
			break
		}
	}
	if match == nil {
		if rep.Stats.PathsDone >= 200 || rep.Stats.StatesKilled > 0 {
			return // budget truncation: the matching path may be the one cut off
		}
		t.Fatalf("no symbolic path matches input %v (%d paths)\n%s",
			input, len(rep.Paths), src)
	}
	var got []byte
	for _, o := range match.Output {
		got = append(got, byte(expr.Eval(o, env)))
	}
	if string(got) != string(m.Output) {
		t.Fatalf("input %v:\nconcrete % x\nsymbolic % x\n%s",
			input, m.Output, got, src)
	}
}

// TestFuzzDifferential is the randomized end-to-end oracle: for random
// programs and random inputs, the concrete emulator and the symbolic
// engine (evaluated under the matching model) must produce identical
// outputs.
func TestFuzzDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	iters := 30
	if testing.Short() {
		iters = 5
	}
	for iter := 0; iter < iters; iter++ {
		progSeed := r.Int63()
		input := make([]byte, 4)
		for i := range input {
			input[i] = byte(r.Uint32())
		}
		diffTiny32(t, progSeed, input)
	}
}

// FuzzDifferentialTiny32 lets the fuzzer steer the program generator
// seed and the input bytes through the same oracle.
func FuzzDifferentialTiny32(f *testing.F) {
	f.Add(int64(2024), []byte{0, 0, 0, 0})
	f.Add(int64(1), []byte{0xde, 0xad, 0xbe, 0xef})
	f.Add(int64(42), []byte{1, 2, 3, 4})
	f.Add(int64(-7), []byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, progSeed int64, input []byte) {
		in := make([]byte, 4)
		copy(in, input) // the generated programs read exactly 4 bytes
		diffTiny32(t, progSeed, in)
	})
}

package core_test

import (
	"bytes"
	"testing"

	"repro/arch"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/profile"
)

// profTotals sums every per-PC series of a snapshot.
func profTotals(s *profile.Snapshot) (execs, queries, hits, misses, forks, infeasible, kills, merges int64) {
	for _, st := range s.PCs {
		execs += st.Execs
		queries += st.SolverQueries
		hits += st.CacheHits
		misses += st.CacheMisses
		forks += st.Forks
		infeasible += st.Infeasible
		kills += st.Kills
		merges += st.Merges
	}
	return
}

// TestProfileMatchesStats checks that the folded profile's totals agree
// exactly with the engine's own Stats counters — the profiler must not
// drop or double-count events across worker shards and frontier kills.
// Runs serial and parallel; the parallel case is the -race workout for
// the shard-fold discipline.
func TestProfileMatchesStats(t *testing.T) {
	src := harness.BranchLadder("tiny32", 7)
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "serial", 4: "parallel"}[workers], func(t *testing.T) {
			prof := profile.New(profile.Meta{ADL: "tiny32"})
			p := build(t, "tiny32", src)
			e := core.NewEngine(arch.MustLoad("tiny32"), p,
				core.Options{InputBytes: 7, MaxPaths: 5000, Workers: workers, Profile: prof})
			r, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			snap := prof.Snapshot()
			if len(snap.PCs) == 0 {
				t.Fatal("profile recorded no PCs")
			}
			execs, queries, hits, misses, forks, infeasible, kills, _ := profTotals(snap)
			if execs != r.Stats.Instructions {
				t.Errorf("execs = %d, want Stats.Instructions %d", execs, r.Stats.Instructions)
			}
			if queries != r.Stats.Solver.Queries {
				t.Errorf("solver queries = %d, want Stats.Solver.Queries %d", queries, r.Stats.Solver.Queries)
			}
			if hits != r.Stats.Solver.CacheHits {
				t.Errorf("cache hits = %d, want %d", hits, r.Stats.Solver.CacheHits)
			}
			if misses+hits != queries {
				t.Errorf("hits %d + misses %d != queries %d", hits, misses, queries)
			}
			if forks != r.Stats.Forks {
				t.Errorf("forks = %d, want Stats.Forks %d", forks, r.Stats.Forks)
			}
			if infeasible != r.Stats.Infeasible {
				t.Errorf("infeasible = %d, want Stats.Infeasible %d", infeasible, r.Stats.Infeasible)
			}
			if kills != int64(r.Stats.StatesKilled) {
				t.Errorf("kills = %d, want Stats.StatesKilled %d", kills, r.Stats.StatesKilled)
			}
			// The attributed solver time must be positive and the report
			// renderable on real data.
			var solverNS int64
			for _, st := range snap.PCs {
				solverNS += st.SolverNS
			}
			if queries > 0 && solverNS == 0 {
				t.Error("queries recorded but zero attributed solver time")
			}
			var pprofBuf, textBuf bytes.Buffer
			if err := prof.WritePprof(&pprofBuf); err != nil {
				t.Fatalf("WritePprof: %v", err)
			}
			if _, err := profile.Parse(pprofBuf.Bytes()); err != nil {
				t.Fatalf("Parse(WritePprof output): %v", err)
			}
			if err := prof.WriteText(&textBuf); err != nil {
				t.Fatalf("WriteText: %v", err)
			}
			if textBuf.Len() == 0 {
				t.Error("empty hotspot report")
			}
		})
	}
}

// TestProfileMergeCandidate checks that a diamond-shaped branch ladder
// yields at least one fork/rejoin merge candidate in the hotspot report
// (ROADMAP item 5: the report must name concrete merge points).
func TestProfileMergeCandidate(t *testing.T) {
	prof := profile.New(profile.Meta{ADL: "tiny32"})
	p := build(t, "tiny32", harness.BranchLadder("tiny32", 6))
	e := core.NewEngine(arch.MustLoad("tiny32"), p,
		core.Options{InputBytes: 6, MaxPaths: 5000, Profile: prof})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rep := prof.Report()
	if len(rep.MergeCandidates) == 0 {
		t.Fatal("branch ladder produced no fork/rejoin merge candidates")
	}
	for _, mc := range rep.MergeCandidates {
		if mc.Rejoin == mc.Fork {
			t.Errorf("degenerate diamond at %#x", mc.Fork)
		}
	}
}

package core

import (
	"fmt"

	"repro/internal/adl"
	"repro/internal/bv"
	"repro/internal/expr"
)

// State is one symbolic execution path: a symbolic machine state plus the
// path condition that led to it.
type State struct {
	ID     int
	Parent int

	regs []*expr.Expr
	mem  *Memory

	// PathCond is the conjunction of branch conditions taken so far.
	PathCond []*expr.Expr

	// PC is the concrete program counter (instruction fetch requires a
	// concrete address; symbolic targets are resolved by forking).
	PC uint64

	Steps  int64
	Depth  int // number of forks on the path
	Output []*expr.Expr

	inputCount int

	// sig is an order-sensitive hash chain over the structural digests of
	// the appended path conditions. Unlike ID (an allocation order that is
	// schedule-dependent in parallel runs) it identifies a path by the
	// branch decisions that produced it, so the parallel engine can order
	// completed paths canonically.
	sig uint64

	// home is the Builder that owns this state's terms. A worker claiming
	// a state forked on another worker's builder must re-home it (term
	// transfer) before touching it.
	home *expr.Builder

	// Terminal status, set when the path completes.
	Done   bool
	Status Status
	Fault  string

	// PathFault, set when Status is StatusPanic, records the recovered
	// panic that killed this path (docs/robustness.md).
	PathFault *PathFault
}

// appendCond extends the path condition and folds the condition's
// structural digest into the path signature.
func (st *State) appendCond(c *expr.Expr) {
	st.PathCond = append(st.PathCond, c)
	st.sig = expr.MixHash(st.sig, expr.Hash(c))
}

// Status tells how a path ended.
type Status int

// Path end statuses.
const (
	StatusRunning Status = iota
	StatusHalt           // halt() executed
	StatusExit           // exit trap
	StatusFault          // error() reached or checker-fatal condition
	StatusSteps          // per-path step budget exhausted
	StatusDecode         // undecodable bytes
	StatusKilled         // dropped by the engine (path budget)
	StatusPanic          // panic recovered at the per-path fault boundary
)

func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusHalt:
		return "halt"
	case StatusExit:
		return "exit"
	case StatusFault:
		return "fault"
	case StatusSteps:
		return "step-limit"
	case StatusDecode:
		return "decode-error"
	case StatusKilled:
		return "killed"
	case StatusPanic:
		return "panic"
	}
	return "unknown"
}

func (st *State) String() string {
	return fmt.Sprintf("state %d: pc=%#x steps=%d depth=%d |pc-cond|=%d",
		st.ID, st.PC, st.Steps, st.Depth, len(st.PathCond))
}

// clone copies the state for a fork.
func (st *State) clone(newID int) *State {
	c := *st
	c.ID = newID
	c.Parent = st.ID
	c.regs = append([]*expr.Expr(nil), st.regs...)
	c.mem = st.mem.clone()
	c.PathCond = append([]*expr.Expr(nil), st.PathCond...)
	c.Output = append([]*expr.Expr(nil), st.Output...)
	c.Depth++
	return &c
}

// Reg reads a register's symbolic value.
func (st *State) Reg(r *adl.Reg) *expr.Expr { return st.regs[r.Num] }

// SetReg writes a register's symbolic value.
func (st *State) SetReg(r *adl.Reg, v *expr.Expr) {
	if v.Width() != r.Width {
		panic(fmt.Sprintf("core: register %s width %d written with %d bits", r.Name, r.Width, v.Width()))
	}
	st.regs[r.Num] = v
}

// Memory is the byte-granular symbolic memory of one path: a shared
// concrete base image overlaid with symbolic writes. Addresses are
// concrete (the engine concretizes symbolic addresses before access).
type Memory struct {
	base    map[uint64]byte
	overlay map[uint64]*expr.Expr
	mask    uint64 // address mask (2^bits - 1)
}

// newMemory wraps a concrete image.
func newMemory(base map[uint64]byte, bits uint) *Memory {
	return &Memory{base: base, overlay: make(map[uint64]*expr.Expr), mask: bv.Mask(bits)}
}

func (m *Memory) clone() *Memory {
	o := make(map[uint64]*expr.Expr, len(m.overlay))
	for k, v := range m.overlay {
		o[k] = v
	}
	return &Memory{base: m.base, overlay: o, mask: m.mask}
}

// ByteAt returns the symbolic byte at addr. b is used to wrap concrete
// bytes; unwritten, unmapped memory reads as zero.
func (m *Memory) ByteAt(b *expr.Builder, addr uint64) *expr.Expr {
	addr &= m.mask
	if v, ok := m.overlay[addr]; ok {
		return v
	}
	return b.Const(8, uint64(m.base[addr]))
}

// SetByte stores a symbolic byte.
func (m *Memory) SetByte(addr uint64, v *expr.Expr) {
	if v.Width() != 8 {
		panic("core: SetByte with non-byte value")
	}
	m.overlay[addr&m.mask] = v
}

// OverlaySize reports the number of symbolically written bytes.
func (m *Memory) OverlaySize() int { return len(m.overlay) }

// Read assembles cells bytes at addr in the given byte order.
func (m *Memory) Read(b *expr.Builder, addr uint64, cells uint, little bool) *expr.Expr {
	var out *expr.Expr
	for i := uint(0); i < cells; i++ {
		byt := m.ByteAt(b, addr+uint64(i))
		if out == nil {
			out = byt
		} else if little {
			out = b.Concat(byt, out)
		} else {
			out = b.Concat(out, byt)
		}
	}
	return out
}

// Write splits val into cells bytes at addr in the given byte order.
func (m *Memory) Write(b *expr.Builder, addr uint64, cells uint, val *expr.Expr, little bool) {
	for i := uint(0); i < cells; i++ {
		var byt *expr.Expr
		if little {
			byt = b.Extract(val, 8*i+7, 8*i)
		} else {
			byt = b.Extract(val, val.Width()-8*i-1, val.Width()-8*i-8)
		}
		m.SetByte(addr+uint64(i), byt)
	}
}

// ConcreteFetch reads cells raw bytes for instruction decoding. Overlaid
// (symbolically written) code bytes must be constant; self-modifying code
// with symbolic bytes is rejected by the engine before calling this.
func (m *Memory) ConcreteFetch(addr uint64, n int) ([]byte, bool) {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		a := (addr + uint64(i)) & m.mask
		if v, ok := m.overlay[a]; ok {
			if !v.IsConst() {
				return nil, false
			}
			out[i] = byte(v.ConstVal())
			continue
		}
		out[i] = m.base[a]
	}
	return out, true
}

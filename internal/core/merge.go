package core

import "repro/internal/expr"

// Opportunistic state merging (a lightweight take on veritesting /
// MergePoint-style path merging): whenever two live states sit at the
// same program counter with the same input position, they are merged
// into one state whose registers and memory are if-then-else selections
// over the two path conditions, and whose path condition is the
// disjunction. On branch-ladder programs this collapses the 2^k paths
// into k+1 live states, trading path count for term size.
//
// The merge is *opportunistic*: it fires only when the candidate states
// coexist in the live set (BFS-style strategies align reconverging
// branches best; DFS usually retires one side before the other arrives).
// Full veritesting-style merging would require static CFG analysis to
// force reconvergence points, which is out of scope.

// mergeLive folds mergeable state pairs in the live set. It preserves
// the relative order of the surviving states (important for DFS).
func (e *Engine) mergeLive(live []*State) []*State {
	if len(live) < 2 {
		return live
	}
	out := live[:0]
	byPC := make(map[uint64]int, len(live)) // pc -> index in out
	for _, st := range live {
		if idx, ok := byPC[st.PC]; ok {
			if merged := e.merge(out[idx], st); merged != nil {
				out[idx] = merged
				e.report.Stats.Merges++
				e.m.merges.Inc()
				e.prof.Merge(merged.PC)
				if e.tr != nil {
					e.tr.Event("merge", e.workerID, merged.ID, merged.PC, "")
				}
				continue
			}
		}
		byPC[st.PC] = len(out)
		out = append(out, st)
	}
	return out
}

// merge combines two states at the same pc; nil when they are not
// mergeable (different input positions or output streams of different
// shape).
func (e *Engine) merge(a, b *State) *State {
	if a.PC != b.PC || a.inputCount != b.inputCount || len(a.Output) != len(b.Output) {
		return nil
	}
	condA := e.conj(a.PathCond)
	condB := e.conj(b.PathCond)

	m := &State{
		ID:         e.nextID,
		Parent:     a.ID,
		regs:       make([]*expr.Expr, len(a.regs)),
		PC:         a.PC,
		Steps:      max(a.Steps, b.Steps),
		Depth:      max(a.Depth, b.Depth),
		inputCount: a.inputCount,
		PathCond:   []*expr.Expr{e.B.BoolOr(condA, condB)},
		home:       e.B,
	}
	m.sig = expr.MixHash(0, expr.Hash(m.PathCond[0]))
	e.nextID++
	for i := range a.regs {
		m.regs[i] = e.ite(condA, a.regs[i], b.regs[i])
	}
	m.Output = make([]*expr.Expr, len(a.Output))
	for i := range a.Output {
		m.Output[i] = e.ite(condA, a.Output[i], b.Output[i])
	}
	m.mem = e.mergeMemory(condA, a.mem, b.mem)
	return m
}

func (e *Engine) ite(c, x, y *expr.Expr) *expr.Expr {
	if x == y {
		return x
	}
	return e.B.ITE(c, x, y)
}

// conj folds a path condition list into one boolean term.
func (e *Engine) conj(conds []*expr.Expr) *expr.Expr {
	acc := e.B.True()
	for _, c := range conds {
		acc = e.B.BoolAnd(acc, c)
	}
	return acc
}

// mergeMemory builds the byte-wise ite merge of two overlays sharing a
// base image.
func (e *Engine) mergeMemory(condA *expr.Expr, a, b *Memory) *Memory {
	m := &Memory{base: a.base, overlay: make(map[uint64]*expr.Expr, len(a.overlay)+len(b.overlay)), mask: a.mask}
	for addr, va := range a.overlay {
		vb, ok := b.overlay[addr]
		if !ok {
			vb = e.B.Const(8, uint64(b.base[addr]))
		}
		m.overlay[addr] = e.ite(condA, va, vb)
	}
	for addr, vb := range b.overlay {
		if _, done := a.overlay[addr]; done {
			continue
		}
		va := e.B.Const(8, uint64(a.base[addr]))
		m.overlay[addr] = e.ite(condA, va, vb)
	}
	return m
}

func max[T int | int64](x, y T) T {
	if x > y {
		return x
	}
	return y
}

package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/smt"
)

func ladderSrc(k int) string {
	src := "_start:\n\tli r3, 0\n"
	for i := 0; i < k; i++ {
		src += fmt.Sprintf("\ttrap 1\n\tli r2, 64\n\tbltu r1, r2, skip%d\n\taddi r3, r3, 1\nskip%d:\n", i, i)
	}
	src += "\tmov r1, r3\n\ttrap 2\n\ttrap 0\n"
	return src
}

func TestMergingCollapsesLadder(t *testing.T) {
	const k = 8
	// Without merging: 2^k completed paths.
	_, plain := analyze(t, "tiny32", ladderSrc(k), core.Options{InputBytes: k, MaxPaths: 1 << (k + 1)}, false)
	if len(plain.Paths) != 1<<k {
		t.Fatalf("plain paths = %d, want %d", len(plain.Paths), 1<<k)
	}
	// With merging: the diamond collapses after every branch.
	_, merged := analyze(t, "tiny32", ladderSrc(k),
		core.Options{InputBytes: k, MaxPaths: 1 << (k + 1), MergeStates: true}, false)
	if len(merged.Paths) >= 1<<k/4 {
		t.Fatalf("merged paths = %d, expected far fewer than %d", len(merged.Paths), 1<<k)
	}
	if merged.Stats.Merges == 0 {
		t.Fatal("no merges recorded")
	}
	if merged.Stats.Instructions >= plain.Stats.Instructions {
		t.Errorf("merging did not reduce executed instructions: %d vs %d",
			merged.Stats.Instructions, plain.Stats.Instructions)
	}
}

func TestMergingPreservesSemantics(t *testing.T) {
	// The merged run must still answer queries correctly: the output
	// counts how many of 4 input bytes are < 64. For any fixed input the
	// merged path condition + output constraint must behave like the
	// unmerged ones.
	const k = 4
	e, r := analyze(t, "tiny32", ladderSrc(k),
		core.Options{InputBytes: k, MergeStates: true}, false)
	// Collect all exit paths; ask: can the output be 4 (all >= 64)?
	for _, want := range []uint64{0, 2, 4} {
		found := false
		for _, p := range r.Paths {
			if p.Status != core.StatusExit || len(p.Output) != 1 {
				continue
			}
			q := append(append([]*expr.Expr(nil), p.PathCond...),
				e.B.Eq(p.Output[0], e.B.Const(8, want)))
			res, err := e.Solver.Check(q...)
			if err != nil {
				t.Fatal(err)
			}
			if res == smt.Sat {
				found = true
				// The model must genuinely produce that count.
				model := e.Solver.Model()
				n := uint64(0)
				for i := 0; i < k; i++ {
					if model[fmt.Sprintf("in%d", i)] >= 64 {
						n++
					}
				}
				if n != want {
					t.Errorf("model %v gives count %d, want %d", model, n, want)
				}
			}
		}
		if !found {
			t.Errorf("no merged path admits output %d", want)
		}
	}
}

func TestMergingWithMemoryWrites(t *testing.T) {
	// Each branch side stores a different byte; after merging, the loaded
	// value must be the ite of both.
	// Merging is opportunistic: it fires when both sides are live at the
	// same pc at the same time, so the test gives both sides the same
	// instruction count and explores breadth-first (lockstep).
	e, r := analyze(t, "tiny32", `
buf:	.byte 0
_start:
	trap 1
	li  r2, buf
	li  r3, 64
	bltu r1, r3, small
	li  r4, 11
	sb  r4, 0(r2)
	jmp join
small:
	li  r4, 22
	sb  r4, 0(r2)
	nop
join:
	lbu r5, 0(r2)
	mov r1, r5
	trap 2
	trap 0
`, core.Options{InputBytes: 1, MergeStates: true, Strategy: core.BFS}, false)
	if len(r.Paths) != 1 {
		t.Fatalf("paths = %d, want 1 merged path", len(r.Paths))
	}
	p := r.Paths[0]
	// Output == 22 iff in0 < 64; output == 11 otherwise; 33 never.
	check := func(v uint64, want smt.Result) {
		q := append(append([]*expr.Expr(nil), p.PathCond...),
			e.B.Eq(p.Output[0], e.B.Const(8, v)))
		res, err := e.Solver.Check(q...)
		if err != nil || res != want {
			t.Errorf("output==%d: %v (%v), want %v", v, res, err, want)
		}
	}
	check(22, smt.Sat)
	check(11, smt.Sat)
	check(33, smt.Unsat)
}

func TestMergingDifferentialStillHolds(t *testing.T) {
	// Re-run the differential workload with merging on: solved inputs
	// must still replay correctly on the emulator (reuses the fuzz
	// generator's structure via a fixed program).
	src := `
scratch:	.space 8
_start:
	trap 1
	mov r4, r1
	trap 1
	li  r3, 100
	bltu r1, r3, lt
	add r4, r4, r1
	jmp done
lt:
	xor r4, r4, r1
done:
	sw  r4, scratch(r0)
	lw  r5, scratch(r0)
	srli r1, r5, 0
	trap 2
	trap 0
`
	e, r := analyze(t, "tiny32", src, core.Options{InputBytes: 2, MergeStates: true}, false)
	exits := 0
	for _, p := range r.Paths {
		if p.Status != core.StatusExit {
			continue
		}
		exits++
		res, err := e.Solver.Check(p.PathCond...)
		if err != nil || res != smt.Sat {
			t.Fatalf("merged path unsat: %v %v", res, err)
		}
	}
	if exits == 0 {
		t.Fatal("no exit paths")
	}
}

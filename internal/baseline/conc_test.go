package baseline_test

import (
	"bytes"
	"testing"

	"repro/arch"
	"repro/internal/baseline"
	"repro/internal/conc"
	"repro/internal/harness"
)

// TestConcMatchesGenerated cross-checks the hand-written emulator
// against the ADL-generated one on the Table 3 workloads and an I/O
// program: same stop, same step count, same registers and output.
func TestConcMatchesGenerated(t *testing.T) {
	cases := []struct {
		name, src string
		input     []byte
	}{
		{"sort", harness.Throughput("sort", 16), nil},
		{"checksum", harness.Throughput("checksum", 64), nil},
		{"echo", `
_start:
	li  r5, -1
echo:
	trap 1
	beq r1, r5, done
	trap 2
	jmp echo
done:
	trap 0
`, []byte("abc")},
	}
	a := arch.MustLoad("tiny32")
	for _, c := range cases {
		p := build(t, c.src)

		hand, err := baseline.NewConcMachine(p)
		if err != nil {
			t.Fatal(err)
		}
		hand.Input = c.input
		hstop := hand.Run(1 << 20)

		gen := conc.NewMachine(a)
		gen.LoadProgram(p)
		gen.Input = c.input
		gstop := gen.Run(1 << 20)

		if hstop.Kind != gstop.Kind.String() || hstop.PC != gstop.PC {
			t.Errorf("%s: stop %v vs %v", c.name, hstop, gstop)
		}
		if hand.Steps != gen.Steps {
			t.Errorf("%s: steps %d vs %d", c.name, hand.Steps, gen.Steps)
		}
		if !bytes.Equal(hand.Output, gen.Output) {
			t.Errorf("%s: output %v vs %v", c.name, hand.Output, gen.Output)
		}
		regs := gen.RegSnapshot()
		for i := 0; i < 16; i++ {
			if hand.Regs[i] != regs[i] {
				t.Errorf("%s: r%d = %#x vs %#x", c.name, i, hand.Regs[i], regs[i])
			}
		}
	}
}

// BenchmarkHandWrittenEmulator is the Table 3 reference rate: what a
// dedicated, non-retargetable emulator achieves on the same workloads.
func BenchmarkHandWrittenEmulator(b *testing.B) {
	for _, w := range []struct {
		name string
		n    int
	}{{"sort", 24}, {"checksum", 400}} {
		p := build(b, harness.Throughput(w.name, w.n))
		b.Run(w.name, func(b *testing.B) {
			var steps int64
			for b.Loop() {
				m, err := baseline.NewConcMachine(p)
				if err != nil {
					b.Fatal(err)
				}
				stop := m.Run(1 << 20)
				if stop.Kind != "halt" {
					b.Fatalf("stop %v", stop)
				}
				steps = m.Steps
			}
			b.ReportMetric(float64(steps)*float64(b.N)/b.Elapsed().Seconds(), "insns/s")
		})
	}
}

package baseline_test

import (
	"fmt"
	"testing"

	"repro/arch"
	"repro/internal/asm"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/prog"
	"repro/internal/smt"
)

func build(t testing.TB, src string) *prog.Program {
	t.Helper()
	p, err := asm.New(arch.MustLoad("tiny32")).Assemble("test.s", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRejectsWrongArch(t *testing.T) {
	p := &prog.Program{Arch: "rv32i"}
	if _, err := baseline.New(p, baseline.Options{}); err == nil {
		t.Fatal("accepted an rv32i image")
	}
}

func TestStraightLine(t *testing.T) {
	p := build(t, `
_start:
	li r1, 5
	addi r1, r1, 3
	halt
`)
	e, err := baseline.New(p, baseline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Paths) != 1 || r.Paths[0].Status != baseline.StatusHalt {
		t.Fatalf("paths %+v", r.Paths)
	}
	if r.Stats.Instructions != 3 {
		t.Errorf("instructions = %d", r.Stats.Instructions)
	}
}

func TestSymbolicFork(t *testing.T) {
	p := build(t, `
_start:
	trap 1
	li  r2, 65
	beq r1, r2, yes
	trap 0
yes:
	trap 2
	trap 0
`)
	e, _ := baseline.New(p, baseline.Options{InputBytes: 1})
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(r.Paths))
	}
}

// comparePrograms runs a tiny32 program through both the hand-written
// baseline and the ADL-generated engine and compares the exploration
// results path-by-path (statuses and solved outputs).
func comparePrograms(t *testing.T, src string, inputBytes int) {
	t.Helper()
	p := build(t, src)

	be, err := baseline.New(p, baseline.Options{InputBytes: inputBytes, MaxSteps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	br, err := be.Run()
	if err != nil {
		t.Fatal(err)
	}

	ge := core.NewEngine(arch.MustLoad("tiny32"), p, core.Options{InputBytes: inputBytes, MaxSteps: 2000})
	gr, err := ge.Run()
	if err != nil {
		t.Fatal(err)
	}

	if len(br.Paths) != len(gr.Paths) {
		t.Fatalf("path counts differ: baseline %d, generated %d", len(br.Paths), len(gr.Paths))
	}

	// Count statuses on both sides.
	bs := map[baseline.Status]int{}
	for _, p := range br.Paths {
		bs[p.Status]++
	}
	gs := map[core.Status]int{}
	for _, p := range gr.Paths {
		gs[p.Status]++
	}
	pairs := []struct {
		b baseline.Status
		g core.Status
	}{
		{baseline.StatusHalt, core.StatusHalt},
		{baseline.StatusExit, core.StatusExit},
		{baseline.StatusFault, core.StatusFault},
		{baseline.StatusSteps, core.StatusSteps},
	}
	for _, pr := range pairs {
		if bs[pr.b] != gs[pr.g] {
			t.Errorf("status %v: baseline %d vs generated %d", pr.g, bs[pr.b], gs[pr.g])
		}
	}

	// For each baseline exit path, solve for the input and check that
	// some generated path's solved output agrees byte for byte (both
	// engines share the input-variable naming).
	for i, bp := range br.Paths {
		if bp.Status != baseline.StatusExit || len(bp.Output) == 0 {
			continue
		}
		res, err := be.Solver.Check(bp.PathCond...)
		if err != nil || res != smt.Sat {
			t.Fatalf("baseline path %d unsat?!", i)
		}
		model := be.Solver.Model()
		var want []byte
		for _, o := range bp.Output {
			want = append(want, byte(expr.Eval(o, model)))
		}
		// Evaluate every generated path under the same model; the one
		// whose path condition holds must produce the same output.
		matched := false
		for _, gp := range gr.Paths {
			holds := true
			for _, c := range gp.PathCond {
				if !expr.EvalBool(remap(ge, c), model) {
					holds = false
					break
				}
			}
			if !holds {
				continue
			}
			var got []byte
			for _, o := range gp.Output {
				got = append(got, byte(expr.Eval(remap(ge, o), model)))
			}
			if string(got) == string(want) {
				matched = true
			}
			break
		}
		if !matched {
			t.Errorf("baseline path %d (output %v under %v) has no matching generated path", i, want, model)
		}
	}
}

// remap is the identity: both engines name input variables in0, in1, ...
// and expr.Eval looks variables up by name, so expressions from either
// builder evaluate under either model.
func remap(_ *core.Engine, e *expr.Expr) *expr.Expr { return e }

func TestBaselineVsGeneratedSimple(t *testing.T) {
	comparePrograms(t, `
_start:
	trap 1
	li  r2, 10
	bltu r1, r2, small
	li  r1, 1
	trap 2
	trap 0
small:
	li  r1, 0
	trap 2
	trap 0
`, 1)
}

func TestBaselineVsGeneratedLoop(t *testing.T) {
	comparePrograms(t, `
_start:
	trap 1
	andi r1, r1, 3    // bound the loop count to 0..3
	li r2, 0
	li r3, 0
loop:
	bgeu r3, r1, done
	add r2, r2, r3
	addi r3, r3, 1
	jmp loop
done:
	mov r1, r2
	trap 2
	trap 0
`, 1)
}

func TestBaselineVsGeneratedDivFault(t *testing.T) {
	comparePrograms(t, `
_start:
	trap 1
	li   r2, 100
	divu r3, r2, r1
	mov  r1, r3
	trap 2
	trap 0
`, 1)
}

func TestBaselineVsGeneratedMemory(t *testing.T) {
	comparePrograms(t, `
buf:	.space 4
_start:
	trap 1
	li  r2, buf
	sb  r1, 0(r2)
	lbu r3, 0(r2)
	li  r4, 7
	bne r3, r4, out
	li  r3, 42
out:
	mov r1, r3
	trap 2
	trap 0
`, 1)
}

func TestBaselineCallReturn(t *testing.T) {
	// sp is initialized by the engine; no need to set it up.
	p := build(t, `
_start:
	trap 1
	jal f
	trap 2
	trap 0
f:
	addi r1, r1, 1
	jr lr
`)
	e, _ := baseline.New(p, baseline.Options{InputBytes: 1})
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Paths) != 1 || r.Paths[0].Status != baseline.StatusExit {
		t.Fatalf("paths %+v", r.Paths)
	}
	// Output = in0 + 1.
	res, _ := e.Solver.Check(e.B.Eq(r.Paths[0].Output[0], e.B.Const(8, 8)))
	if res != smt.Sat {
		t.Fatal("output==8 unsat")
	}
	if got := e.Solver.Model()["in0"]; got != 7 {
		t.Errorf("in0 = %d, want 7", got)
	}
}

func TestManyPathsBudget(t *testing.T) {
	var src string
	src = "_start:\n"
	for i := 0; i < 6; i++ {
		src += fmt.Sprintf("\ttrap 1\n\tli r2, 128\n\tbltu r1, r2, s%d\ns%d:\n", i, i)
	}
	src += "\ttrap 0\n"
	p := build(t, src)
	e, _ := baseline.New(p, baseline.Options{InputBytes: 6, MaxPaths: 10})
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Paths) > 10 {
		t.Errorf("path budget exceeded: %d", len(r.Paths))
	}
}

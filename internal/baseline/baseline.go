// Package baseline implements a hand-written symbolic execution engine
// hard-coded for the tiny32 architecture. It is the comparison point for
// the paper's retargeting claim: this is the code one must write (and
// rewrite, per ISA) without the ADL-generated stack. It shares only the
// expression DAG, the SMT solver and the program-image format with the
// retargetable engine; decoding, register modeling, and instruction
// semantics are all manual.
//
// The engine intentionally mirrors the retargetable engine's behaviour
// (same trap convention, same forking discipline) so that the two can be
// differentially tested against each other and benchmarked head-to-head.
package baseline

import (
	"fmt"
	"time"

	"repro/internal/bv"
	"repro/internal/expr"
	"repro/internal/prog"
	"repro/internal/smt"
)

// tiny32 opcode bytes (must match arch/tiny32.adl).
const (
	opHalt  = 0x00
	opTrap  = 0x01
	opAdd   = 0x10
	opSub   = 0x11
	opMul   = 0x12
	opAnd   = 0x13
	opOr    = 0x14
	opXor   = 0x15
	opSll   = 0x16
	opSrl   = 0x17
	opSra   = 0x18
	opDivu  = 0x19
	opDivs  = 0x1a
	opRemu  = 0x1b
	opSltu  = 0x1c
	opSlts  = 0x1d
	opMov   = 0x1e
	opNot   = 0x1f
	opAddi  = 0x20
	opAndi  = 0x21
	opOri   = 0x22
	opXori  = 0x23
	opSlli  = 0x24
	opSrli  = 0x25
	opSrai  = 0x26
	opLi    = 0x27
	opLih   = 0x28
	opSltiu = 0x29
	opSltis = 0x2a
	opLw    = 0x30
	opLh    = 0x31
	opLhu   = 0x32
	opLb    = 0x33
	opLbu   = 0x34
	opSw    = 0x35
	opSh    = 0x36
	opSb    = 0x37
	opBeq   = 0x40
	opBne   = 0x41
	opBlt   = 0x42
	opBltu  = 0x43
	opBge   = 0x44
	opBgeu  = 0x45
	opJmp   = 0x46
	opJal   = 0x47
	opJr    = 0x48
	opJalr  = 0x49
)

// Options configures a baseline run (a subset of core.Options).
type Options struct {
	MaxSteps   int64
	MaxPaths   int
	InputBytes int
	StackBase  uint64
}

func (o Options) withDefaults() Options {
	if o.MaxSteps == 0 {
		o.MaxSteps = 10000
	}
	if o.MaxPaths == 0 {
		o.MaxPaths = 1000
	}
	if o.InputBytes == 0 {
		o.InputBytes = 8
	}
	if o.StackBase == 0 {
		o.StackBase = 0x40000
	}
	return o
}

// Status mirrors core's path statuses for the subset baseline supports.
type Status int

// Path end statuses.
const (
	StatusHalt Status = iota
	StatusExit
	StatusFault
	StatusSteps
	StatusDecode
)

// Path is one completed execution path.
type Path struct {
	Status   Status
	Fault    string
	PathCond []*expr.Expr
	Output   []*expr.Expr
	Steps    int64
}

// Stats counts work done during a run.
type Stats struct {
	Instructions int64
	Forks        int64
	Infeasible   int64
	WallTime     time.Duration
}

// Report is the result of a run.
type Report struct {
	Paths []Path
	Stats Stats
}

// Engine is the hand-written tiny32 symbolic executor.
type Engine struct {
	B      *expr.Builder
	Solver *smt.Solver
	prog   *prog.Program
	opts   Options
	stats  Stats
	paths  []Path
}

// state is a tiny32 machine state: 16 GPRs plus a concrete pc.
type state struct {
	regs     [16]*expr.Expr
	mem      map[uint64]*expr.Expr
	base     map[uint64]byte
	pc       uint64
	cond     []*expr.Expr
	output   []*expr.Expr
	steps    int64
	inputIdx int
}

func (s *state) clone() *state {
	c := *s
	c.mem = make(map[uint64]*expr.Expr, len(s.mem))
	for k, v := range s.mem {
		c.mem[k] = v
	}
	c.cond = append([]*expr.Expr(nil), s.cond...)
	c.output = append([]*expr.Expr(nil), s.output...)
	return &c
}

// New builds a baseline engine for a tiny32 program image.
func New(p *prog.Program, opts Options) (*Engine, error) {
	if p.Arch != "tiny32" {
		return nil, fmt.Errorf("baseline: engine is hard-coded for tiny32, image is for %s", p.Arch)
	}
	b := expr.NewBuilder()
	return &Engine{B: b, Solver: smt.New(b), prog: p, opts: opts.withDefaults()}, nil
}

// Run explores the program and returns the report.
func (e *Engine) Run() (*Report, error) {
	t0 := time.Now()
	init := &state{base: e.prog.Image(), mem: map[uint64]*expr.Expr{}, pc: e.prog.Entry}
	for i := range init.regs {
		init.regs[i] = e.B.Const(32, 0)
	}
	init.regs[14] = e.B.Const(32, e.opts.StackBase) // sp
	work := []*state{init}
	for len(work) > 0 && len(e.paths) < e.opts.MaxPaths {
		st := work[len(work)-1]
		work = work[:len(work)-1]
		succ, err := e.step(st)
		if err != nil {
			return nil, err
		}
		work = append(work, succ...)
	}
	e.stats.WallTime = time.Since(t0)
	return &Report{Paths: e.paths, Stats: e.stats}, nil
}

func (e *Engine) finish(st *state, status Status, fault string) {
	e.paths = append(e.paths, Path{
		Status: status, Fault: fault,
		PathCond: st.cond, Output: st.output, Steps: st.steps,
	})
}

func (e *Engine) loadByte(st *state, addr uint64) *expr.Expr {
	addr = bv.Trunc(addr, 32)
	if v, ok := st.mem[addr]; ok {
		return v
	}
	return e.B.Const(8, uint64(st.base[addr]))
}

func (e *Engine) load(st *state, addr uint64, n uint) *expr.Expr {
	out := e.loadByte(st, addr)
	for i := uint(1); i < n; i++ {
		out = e.B.Concat(e.loadByte(st, addr+uint64(i)), out)
	}
	return out
}

func (e *Engine) store(st *state, addr uint64, n uint, v *expr.Expr) {
	for i := uint(0); i < n; i++ {
		st.mem[bv.Trunc(addr+uint64(i), 32)] = e.B.Extract(v, 8*i+7, 8*i)
	}
}

// concAddr concretizes a symbolic address exactly like the retargetable
// engine: one solver model, pinned with an equality constraint.
func (e *Engine) concAddr(st *state, a *expr.Expr) (uint64, bool, error) {
	if a.IsConst() {
		return a.ConstVal(), true, nil
	}
	r, err := e.Solver.Check(st.cond...)
	if err == smt.ErrBudget || r != smt.Sat {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	v := e.Solver.Value(a)
	st.cond = append(st.cond, e.B.Eq(a, e.B.Const(32, v)))
	return v, true, nil
}

func (e *Engine) feasible(cond []*expr.Expr) (bool, error) {
	r, err := e.Solver.Check(cond...)
	if err == smt.ErrBudget {
		return true, nil
	}
	if err != nil {
		return false, err
	}
	return r != smt.Unsat, nil
}

// branch forks on a condition toward target (taken) or pc+4.
func (e *Engine) branch(st *state, cond *expr.Expr, targetPC uint64) ([]*state, error) {
	next := bv.Trunc(st.pc+4, 32)
	if cond.Kind() == expr.KBoolConst {
		if cond.ConstVal() == 1 {
			st.pc = targetPC
		} else {
			st.pc = next
		}
		return []*state{st}, nil
	}
	e.stats.Forks++
	var out []*state
	if ok, err := e.feasible(append(st.cond, cond)); err != nil {
		return nil, err
	} else if ok {
		taken := st.clone()
		taken.cond = append(taken.cond, cond)
		taken.pc = targetPC
		out = append(out, taken)
	} else {
		e.stats.Infeasible++
	}
	neg := e.B.BoolNot(cond)
	if ok, err := e.feasible(append(st.cond, neg)); err != nil {
		return nil, err
	} else if ok {
		st.cond = append(st.cond, neg)
		st.pc = next
		out = append(out, st)
	} else {
		e.stats.Infeasible++
	}
	return out, nil
}

func (e *Engine) step(st *state) ([]*state, error) {
	if st.steps >= e.opts.MaxSteps {
		e.finish(st, StatusSteps, "")
		return nil, nil
	}
	// Fetch (instruction bytes must be concrete).
	var word uint64
	for i := 3; i >= 0; i-- {
		b := e.loadByte(st, st.pc+uint64(i))
		if !b.IsConst() {
			e.finish(st, StatusDecode, "symbolic instruction bytes")
			return nil, nil
		}
		word = word<<8 | b.ConstVal()
	}
	st.steps++
	e.stats.Instructions++

	op := word >> 24 & 0xff
	rd := int(word >> 20 & 0xf)
	ra := int(word >> 16 & 0xf)
	rb := int(word >> 12 & 0xf)
	imm := word & 0xffff
	target := word & 0xffffff
	b := e.B

	simm32 := func() *expr.Expr { return b.Const(32, bv.Trunc(bv.SExt(imm, 16), 32)) }
	uimm32 := func() *expr.Expr { return b.Const(32, imm) }
	next := func() ([]*state, error) {
		st.pc = bv.Trunc(st.pc+4, 32)
		return []*state{st}, nil
	}
	branchRel := func(cond *expr.Expr) ([]*state, error) {
		return e.branch(st, cond, bv.Trunc(st.pc+bv.SExt(imm, 16), 32))
	}
	memAddr := func() (uint64, bool, error) {
		return e.concAddr(st, b.Add(st.regs[ra], simm32()))
	}

	switch op {
	case opHalt:
		e.finish(st, StatusHalt, "")
		return nil, nil
	case opTrap:
		switch imm {
		case 0:
			e.finish(st, StatusExit, "")
			return nil, nil
		case 1:
			if st.inputIdx < e.opts.InputBytes {
				in := b.Var(8, fmt.Sprintf("in%d", st.inputIdx))
				st.inputIdx++
				st.regs[1] = b.ZExt(in, 32)
			} else {
				st.regs[1] = b.Const(32, bv.Mask(32))
			}
			return next()
		case 2:
			st.output = append(st.output, b.Extract(st.regs[1], 7, 0))
			return next()
		default:
			e.finish(st, StatusFault, fmt.Sprintf("unknown trap %d", imm))
			return nil, nil
		}

	case opAdd:
		st.regs[rd] = b.Add(st.regs[ra], st.regs[rb])
		return next()
	case opSub:
		st.regs[rd] = b.Sub(st.regs[ra], st.regs[rb])
		return next()
	case opMul:
		st.regs[rd] = b.Mul(st.regs[ra], st.regs[rb])
		return next()
	case opAnd:
		st.regs[rd] = b.And(st.regs[ra], st.regs[rb])
		return next()
	case opOr:
		st.regs[rd] = b.Or(st.regs[ra], st.regs[rb])
		return next()
	case opXor:
		st.regs[rd] = b.Xor(st.regs[ra], st.regs[rb])
		return next()
	case opSll:
		st.regs[rd] = b.Shl(st.regs[ra], st.regs[rb])
		return next()
	case opSrl:
		st.regs[rd] = b.LShr(st.regs[ra], st.regs[rb])
		return next()
	case opSra:
		st.regs[rd] = b.AShr(st.regs[ra], st.regs[rb])
		return next()
	case opDivu, opDivs, opRemu:
		// The architecture faults on zero divisors: fork exactly like the
		// generated engine does for the description's error() branch.
		div := st.regs[rb]
		zero := b.Eq(div, b.Const(32, 0))
		var out []*state
		if zero.Kind() != expr.KBoolConst || zero.ConstVal() == 1 {
			if ok, err := e.feasible(append(st.cond, zero)); err != nil {
				return nil, err
			} else if ok {
				f := st.clone()
				f.cond = append(f.cond, zero)
				e.stats.Forks++
				e.finish(f, StatusFault, "division by zero")
			}
		}
		nz := b.BoolNot(zero)
		if nz.Kind() == expr.KBoolConst && nz.ConstVal() == 0 {
			return out, nil
		}
		if ok, err := e.feasible(append(st.cond, nz)); err != nil {
			return nil, err
		} else if !ok {
			e.stats.Infeasible++
			return out, nil
		}
		if nz.Kind() != expr.KBoolConst {
			st.cond = append(st.cond, nz)
		}
		switch op {
		case opDivu:
			st.regs[rd] = b.UDiv(st.regs[ra], div)
		case opDivs:
			st.regs[rd] = b.SDiv(st.regs[ra], div)
		default:
			st.regs[rd] = b.URem(st.regs[ra], div)
		}
		st.pc = bv.Trunc(st.pc+4, 32)
		return append(out, st), nil
	case opSltu:
		st.regs[rd] = b.BoolToBV(b.ULt(st.regs[ra], st.regs[rb]), 32)
		return next()
	case opSlts:
		st.regs[rd] = b.BoolToBV(b.SLt(st.regs[ra], st.regs[rb]), 32)
		return next()
	case opMov:
		st.regs[rd] = st.regs[ra]
		return next()
	case opNot:
		st.regs[rd] = b.Not(st.regs[ra])
		return next()

	case opAddi:
		st.regs[rd] = b.Add(st.regs[ra], simm32())
		return next()
	case opAndi:
		st.regs[rd] = b.And(st.regs[ra], uimm32())
		return next()
	case opOri:
		st.regs[rd] = b.Or(st.regs[ra], uimm32())
		return next()
	case opXori:
		st.regs[rd] = b.Xor(st.regs[ra], uimm32())
		return next()
	case opSlli:
		st.regs[rd] = b.Shl(st.regs[ra], uimm32())
		return next()
	case opSrli:
		st.regs[rd] = b.LShr(st.regs[ra], uimm32())
		return next()
	case opSrai:
		st.regs[rd] = b.AShr(st.regs[ra], uimm32())
		return next()
	case opLi:
		st.regs[rd] = simm32()
		return next()
	case opLih:
		st.regs[rd] = b.Const(32, imm<<16)
		return next()
	case opSltiu:
		st.regs[rd] = b.BoolToBV(b.ULt(st.regs[ra], simm32()), 32)
		return next()
	case opSltis:
		st.regs[rd] = b.BoolToBV(b.SLt(st.regs[ra], simm32()), 32)
		return next()

	case opLw, opLh, opLhu, opLb, opLbu:
		addr, ok, err := memAddr()
		if err != nil {
			return nil, err
		}
		if !ok {
			e.finish(st, StatusFault, "unsatisfiable address")
			return nil, nil
		}
		switch op {
		case opLw:
			st.regs[rd] = e.load(st, addr, 4)
		case opLh:
			st.regs[rd] = b.SExt(e.load(st, addr, 2), 32)
		case opLhu:
			st.regs[rd] = b.ZExt(e.load(st, addr, 2), 32)
		case opLb:
			st.regs[rd] = b.SExt(e.load(st, addr, 1), 32)
		case opLbu:
			st.regs[rd] = b.ZExt(e.load(st, addr, 1), 32)
		}
		return next()
	case opSw, opSh, opSb:
		addr, ok, err := memAddr()
		if err != nil {
			return nil, err
		}
		if !ok {
			e.finish(st, StatusFault, "unsatisfiable address")
			return nil, nil
		}
		switch op {
		case opSw:
			e.store(st, addr, 4, st.regs[rd])
		case opSh:
			e.store(st, addr, 2, b.Extract(st.regs[rd], 15, 0))
		default:
			e.store(st, addr, 1, b.Extract(st.regs[rd], 7, 0))
		}
		return next()

	case opBeq:
		return branchRel(b.Eq(st.regs[rd], st.regs[ra]))
	case opBne:
		return branchRel(b.Ne(st.regs[rd], st.regs[ra]))
	case opBlt:
		return branchRel(b.SLt(st.regs[rd], st.regs[ra]))
	case opBltu:
		return branchRel(b.ULt(st.regs[rd], st.regs[ra]))
	case opBge:
		return branchRel(b.SGe(st.regs[rd], st.regs[ra]))
	case opBgeu:
		return branchRel(b.UGe(st.regs[rd], st.regs[ra]))
	case opJmp:
		st.pc = bv.Trunc(st.pc+bv.SExt(target, 24), 32)
		return []*state{st}, nil
	case opJal:
		st.regs[15] = b.Const(32, bv.Trunc(st.pc+4, 32))
		st.pc = bv.Trunc(st.pc+bv.SExt(target, 24), 32)
		return []*state{st}, nil
	case opJr, opJalr:
		tgt := st.regs[ra]
		if op == opJalr {
			st.regs[rd] = b.Const(32, bv.Trunc(st.pc+4, 32))
		}
		addr, ok, err := e.concAddr(st, tgt)
		if err != nil {
			return nil, err
		}
		if !ok {
			e.finish(st, StatusFault, "unresolvable jump target")
			return nil, nil
		}
		st.pc = bv.Trunc(addr, 32)
		return []*state{st}, nil
	}
	e.finish(st, StatusDecode, fmt.Sprintf("unknown opcode %#x", op))
	return nil, nil
}

// Hand-written concrete tiny32 emulator: the comparison point for the
// semantics compiler's emulation-speed claim (docs/compile.md). This is
// the emulator one would write directly against the ISA manual — a
// fetch/decode/execute switch over hard-coded encodings with native
// uint64 arithmetic — so the compiled ADL-generated emulator's rate is
// measured against it, not against the (much slower) RTL interpreter.
// It mirrors internal/conc's observable behaviour: same trap
// convention, same stop kinds, same fault messages.
package baseline

import (
	"fmt"

	"repro/internal/bv"
	"repro/internal/prog"
)

// ConcStop mirrors internal/conc's stop reasons for the hand-written
// emulator.
type ConcStop struct {
	Kind  string // "halt", "exit", "steps", "decode", "fault"
	PC    uint64
	Fault string
}

// ConcMachine is the hand-written concrete tiny32 machine.
type ConcMachine struct {
	Regs   [16]uint64
	PC     uint64
	Mem    map[uint64]byte
	Input  []byte
	Output []byte
	Steps  int64

	inPos int
}

// NewConcMachine builds the machine for a tiny32 program image.
func NewConcMachine(p *prog.Program) (*ConcMachine, error) {
	if p.Arch != "tiny32" {
		return nil, fmt.Errorf("baseline emulator is hard-coded for tiny32, got %q", p.Arch)
	}
	m := &ConcMachine{Mem: make(map[uint64]byte), PC: p.Entry}
	for _, s := range p.Segments {
		for i, b := range s.Data {
			m.Mem[bv.Trunc(s.Addr+uint64(i), 32)] = b
		}
	}
	return m, nil
}

func (m *ConcMachine) load(addr uint64, n uint) uint64 {
	var v uint64
	for i := int(n) - 1; i >= 0; i-- { // little endian
		v = v<<8 | uint64(m.Mem[bv.Trunc(addr+uint64(i), 32)])
	}
	return v
}

func (m *ConcMachine) store(addr uint64, n uint, v uint64) {
	for i := uint(0); i < n; i++ {
		m.Mem[bv.Trunc(addr+uint64(i), 32)] = byte(v >> (8 * i))
	}
}

// Run executes up to maxSteps instructions.
func (m *ConcMachine) Run(maxSteps int64) ConcStop {
	for m.Steps < maxSteps {
		pc := m.PC
		word := m.load(pc, 4)
		m.Steps++

		op := word >> 24 & 0xff
		rd := word >> 20 & 0xf
		ra := word >> 16 & 0xf
		rb := word >> 12 & 0xf
		imm := word & 0xffff
		target := word & 0xffffff

		simm := bv.Trunc(bv.SExt(imm, 16), 32)
		r := &m.Regs
		set := func(v uint64) { r[rd] = bv.Trunc(v, 32) }
		div := func() (uint64, bool) {
			if r[rb] == 0 {
				return 0, false
			}
			return r[rb], true
		}

		next := pc + 4
		switch op {
		case opHalt:
			return ConcStop{Kind: "halt", PC: pc}
		case opTrap:
			switch imm {
			case 0:
				return ConcStop{Kind: "exit", PC: pc}
			case 1:
				if m.inPos < len(m.Input) {
					r[1] = uint64(m.Input[m.inPos])
					m.inPos++
				} else {
					r[1] = bv.Mask(32)
				}
			case 2:
				m.Output = append(m.Output, byte(r[1]))
			default:
				return ConcStop{Kind: "fault", PC: pc, Fault: fmt.Sprintf("unknown trap %d", imm)}
			}
		case opAdd:
			set(r[ra] + r[rb])
		case opSub:
			set(r[ra] - r[rb])
		case opMul:
			set(r[ra] * r[rb])
		case opAnd:
			set(r[ra] & r[rb])
		case opOr:
			set(r[ra] | r[rb])
		case opXor:
			set(r[ra] ^ r[rb])
		case opSll:
			set(bv.Shl(r[ra], r[rb], 32))
		case opSrl:
			set(bv.LShr(r[ra], r[rb], 32))
		case opSra:
			set(bv.AShr(r[ra], r[rb], 32))
		case opDivu:
			d, ok := div()
			if !ok {
				return ConcStop{Kind: "fault", PC: pc, Fault: "division by zero"}
			}
			set(r[ra] / d)
		case opDivs:
			d, ok := div()
			if !ok {
				return ConcStop{Kind: "fault", PC: pc, Fault: "division by zero"}
			}
			set(bv.SDiv(r[ra], d, 32))
		case opRemu:
			d, ok := div()
			if !ok {
				return ConcStop{Kind: "fault", PC: pc, Fault: "division by zero"}
			}
			set(r[ra] % d)
		case opRems:
			d, ok := div()
			if !ok {
				return ConcStop{Kind: "fault", PC: pc, Fault: "division by zero"}
			}
			set(bv.SRem(r[ra], d, 32))
		case opSltu:
			set(boolBit(r[ra] < r[rb]))
		case opSlts:
			set(boolBit(bv.SLt(r[ra], r[rb], 32)))
		case opMov:
			set(r[ra])
		case opNot:
			set(^r[ra])
		case opAddi:
			set(r[ra] + simm)
		case opAndi:
			set(r[ra] & imm)
		case opOri:
			set(r[ra] | imm)
		case opXori:
			set(r[ra] ^ imm)
		case opSlli:
			set(bv.Shl(r[ra], imm, 32))
		case opSrli:
			set(bv.LShr(r[ra], imm, 32))
		case opSrai:
			set(bv.AShr(r[ra], imm, 32))
		case opLi:
			set(simm)
		case opLih:
			set(imm << 16)
		case opSltiu:
			set(boolBit(r[ra] < simm))
		case opSltis:
			set(boolBit(bv.SLt(r[ra], simm, 32)))
		case opLw:
			set(m.load(bv.Trunc(r[ra]+simm, 32), 4))
		case opLh:
			set(bv.Trunc(bv.SExt(m.load(bv.Trunc(r[ra]+simm, 32), 2), 16), 32))
		case opLhu:
			set(m.load(bv.Trunc(r[ra]+simm, 32), 2))
		case opLb:
			set(bv.Trunc(bv.SExt(m.load(bv.Trunc(r[ra]+simm, 32), 1), 8), 32))
		case opLbu:
			set(m.load(bv.Trunc(r[ra]+simm, 32), 1))
		case opSw:
			m.store(bv.Trunc(r[ra]+simm, 32), 4, r[rd])
		case opSh:
			m.store(bv.Trunc(r[ra]+simm, 32), 2, r[rd])
		case opSb:
			m.store(bv.Trunc(r[ra]+simm, 32), 1, r[rd])
		case opBeq:
			if r[rd] == r[ra] {
				next = pc + simm
			}
		case opBne:
			if r[rd] != r[ra] {
				next = pc + simm
			}
		case opBlt:
			if bv.SLt(r[rd], r[ra], 32) {
				next = pc + simm
			}
		case opBltu:
			if r[rd] < r[ra] {
				next = pc + simm
			}
		case opBge:
			if !bv.SLt(r[rd], r[ra], 32) {
				next = pc + simm
			}
		case opBgeu:
			if r[rd] >= r[ra] {
				next = pc + simm
			}
		case opJmp:
			next = pc + bv.SExt(target, 24)
		case opJal:
			r[15] = bv.Trunc(pc+4, 32)
			next = pc + bv.SExt(target, 24)
		case opJr:
			next = r[ra]
		case opJalr:
			r[rd] = bv.Trunc(pc+4, 32)
			next = r[ra]
		default:
			return ConcStop{Kind: "decode", PC: pc, Fault: fmt.Sprintf("unknown opcode %#x", op)}
		}
		m.PC = bv.Trunc(next, 32)
	}
	return ConcStop{Kind: "steps", PC: m.PC}
}

// opRems is outside the hand-written symbolic engine's table; the
// concrete emulator covers it for workload parity with internal/conc.
const opRems = 0x4a

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

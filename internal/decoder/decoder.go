// Package decoder implements the retargetable instruction decoder and
// disassembler. Both are generated from an ADL architecture model: the
// decoder matches the mask/value pairs the ADL checker computed from each
// instruction's encoding constraints, trying the longest encodings first
// so that variable-length architectures decode unambiguously.
package decoder

import (
	"fmt"
	"strings"

	"repro/internal/adl"
	"repro/internal/bv"
	"repro/internal/cover"
	"repro/internal/faultinject"
	"repro/internal/rtl"
)

// Decoded is one decoded instruction.
type Decoded struct {
	Insn *adl.Insn
	Ops  rtl.Operands
	Word uint64 // raw encoding bits
	Len  int    // encoding length in bytes
}

// Decoder decodes instruction bytes for one architecture.
type Decoder struct {
	arch   *adl.Arch
	groups []group // one per encoding length, longest first

	// Cov, when set, records decode-layer coverage for every successful
	// match. match() is the single choke point all consumers go through
	// (engine, concrete emulator, oracle round-trips, disassembly), so
	// this one hook covers them all. Nil-safe.
	Cov *cover.ArchCov

	// Inject, when set, is the fault-injection hook for the decode site
	// (docs/robustness.md): it can panic or synthesize a malformed
	// decode (faultinject.ErrDecode). Nil-safe.
	Inject *faultinject.Injector
}

// group holds the instructions of one encoding length with a first-level
// index on the most significant byte of the masked word (the byte where
// well-designed ISAs put their primary opcode).
type group struct {
	bytes  int
	byIdx  [256][]*adl.Insn // indexed by top byte when fully masked there
	linear []*adl.Insn      // instructions whose top byte is not fully fixed
}

// New builds a decoder for the architecture.
func New(a *adl.Arch) *Decoder {
	d := &Decoder{arch: a}
	for _, w := range a.FormatWidths() {
		g := group{bytes: int(w / 8)}
		topShift := w - 8
		for _, ins := range a.Insns {
			if ins.Format.Width != w {
				continue
			}
			topMask := ins.Mask >> topShift & 0xff
			if topMask == 0xff {
				top := ins.Match >> topShift & 0xff
				g.byIdx[top] = append(g.byIdx[top], ins)
			} else {
				g.linear = append(g.linear, ins)
			}
		}
		d.groups = append(d.groups, g)
	}
	return d
}

// Arch returns the decoder's architecture.
func (d *Decoder) Arch() *adl.Arch { return d.arch }

// word assembles n bytes into an integer per the architecture byte order.
func (d *Decoder) word(b []byte) uint64 {
	var v uint64
	if d.arch.Endian == adl.Little {
		for i := len(b) - 1; i >= 0; i-- {
			v = v<<8 | uint64(b[i])
		}
	} else {
		for _, c := range b {
			v = v<<8 | uint64(c)
		}
	}
	return v
}

// ErrNoMatch reports undecodable bytes.
type ErrNoMatch struct {
	Bytes []byte
}

func (e *ErrNoMatch) Error() string {
	return fmt.Sprintf("decoder: no instruction matches % x", e.Bytes)
}

// Decode decodes the instruction at the start of mem. Longer encodings
// are preferred. mem may be longer than the instruction.
func (d *Decoder) Decode(mem []byte) (Decoded, error) {
	if k := d.Inject.Fire(faultinject.SiteDecode); k == faultinject.KindDecode {
		return Decoded{}, faultinject.ErrDecode
	}
	for _, g := range d.groups {
		if len(mem) < g.bytes {
			continue
		}
		w := d.word(mem[:g.bytes])
		top := int(w >> (uint(g.bytes)*8 - 8) & 0xff)
		if dec, ok := d.match(g.byIdx[top], w, g.bytes); ok {
			return dec, nil
		}
		if dec, ok := d.match(g.linear, w, g.bytes); ok {
			return dec, nil
		}
	}
	n := d.arch.MaxInsnBytes()
	if n > len(mem) {
		n = len(mem)
	}
	return Decoded{}, &ErrNoMatch{Bytes: mem[:n]}
}

func (d *Decoder) match(candidates []*adl.Insn, w uint64, n int) (Decoded, bool) {
	for _, ins := range candidates {
		if w&ins.Mask == ins.Match {
			d.Cov.Hit(cover.LDecode, ins)
			ops := make(rtl.Operands, len(ins.Operands))
			for _, op := range ins.Operands {
				ops[op.Name] = adl.ExtractOperand(op, w)
			}
			return Decoded{Insn: ins, Ops: ops, Word: w, Len: n}, true
		}
	}
	return Decoded{}, false
}

// Disasm renders a decoded instruction as assembly text. addr is the
// instruction's address, used to print pc-relative operands as absolute
// targets.
func Disasm(dec Decoded, addr uint64) string {
	var sb strings.Builder
	sb.WriteString(dec.Insn.Mnemonic)
	for _, tok := range dec.Insn.AsmToks {
		if tok.Operand == nil {
			sb.WriteString(tok.Lit)
			continue
		}
		// Operands get a leading space except directly after an opening
		// parenthesis, so "lw %rd, %imm(%ra)" prints as "lw r1, 8(r2)".
		s := sb.String()
		if s[len(s)-1] != '(' {
			sb.WriteByte(' ')
		}
		writeOperand(&sb, tok.Operand, dec.Ops[tok.Operand.Name], addr)
	}
	return sb.String()
}

func writeOperand(sb *strings.Builder, op *adl.Operand, v uint64, addr uint64) {
	switch {
	case op.Kind == adl.FReg:
		sb.WriteString(op.File.Regs[v].Name)
	case op.Rel():
		off := bv.SExt(v, op.Bits())
		fmt.Fprintf(sb, "%#x", addr+off)
	case op.Signed():
		fmt.Fprintf(sb, "%d", bv.ToInt64(v, op.Bits()))
	default:
		fmt.Fprintf(sb, "%d", v)
	}
}

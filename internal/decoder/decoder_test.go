package decoder_test

import (
	"encoding/binary"
	"testing"

	"repro/arch"
	"repro/internal/asm"
	"repro/internal/decoder"
)

// encodeOne assembles a single instruction and returns its bytes.
func encodeOne(t *testing.T, archName, line string) []byte {
	t.Helper()
	a := arch.MustLoad(archName)
	p, err := asm.New(a).Assemble("one.s", line+"\n")
	if err != nil {
		t.Fatalf("%s: %v", line, err)
	}
	if len(p.Segments) != 1 {
		t.Fatalf("%s: %d segments", line, len(p.Segments))
	}
	return p.Segments[0].Data
}

// TestRV32IGoldenEncodings cross-checks the ADL-generated assembler
// against independently known RISC-V machine code (values from the
// RISC-V ISA manual / binutils).
func TestRV32IGoldenEncodings(t *testing.T) {
	golden := []struct {
		asm  string
		want uint32
	}{
		{"addi a0, zero, 6", 0x00600513},
		{"addi sp, sp, -16", 0xff010113},
		{"add a0, a1, a2", 0x00c58533},
		{"sub a0, a1, a2", 0x40c58533},
		{"and t0, t1, t2", 0x007372b3},
		{"xori a3, a4, 255", 0x0ff74693},
		{"slli a0, a0, 3", 0x00351513},
		{"srai a0, a0, 1", 0x40155513},
		{"lui a0, 0xdead", 0x0dead537},
		{"lw a0, 8(sp)", 0x00812503},
		{"sw a0, 12(sp)", 0x00a12623},
		{"lbu t0, 0(a0)", 0x00054283},
		{"sb t0, 1(a0)", 0x005500a3},
		{"mul a0, a1, a2", 0x02c58533},
		{"divu a0, a1, a2", 0x02c5d533},
		{"ecall", 0x00000073},
		{"ebreak", 0x00100073},
		{"jalr ra, 0(a0)", 0x000500e7},
	}
	for _, g := range golden {
		got := encodeOne(t, "rv32i", g.asm)
		if len(got) != 4 {
			t.Errorf("%s: %d bytes", g.asm, len(got))
			continue
		}
		if w := binary.LittleEndian.Uint32(got); w != g.want {
			t.Errorf("%s: encoded %#08x, want %#08x", g.asm, w, g.want)
		}
	}
}

// TestRV32IBranchJumpEncodings checks the scattered-immediate B and J
// formats with known offsets.
func TestRV32IBranchJumpEncodings(t *testing.T) {
	// beq a0, a1, +8 from address 0: imm=8 -> 0x00b50463.
	a := arch.MustLoad("rv32i")
	p, err := asm.New(a).Assemble("b.s", `
_start:
	beq a0, a1, target
	addi zero, zero, 0
target:
	jal ra, _start
`)
	if err != nil {
		t.Fatal(err)
	}
	data := p.Segments[0].Data
	if w := binary.LittleEndian.Uint32(data[0:4]); w != 0x00b50463 {
		t.Errorf("beq +8 encoded %#08x, want 0x00b50463", w)
	}
	// jal ra, -8 from address 8: imm=-8 -> 0xff9ff0ef.
	if w := binary.LittleEndian.Uint32(data[8:12]); w != 0xff9ff0ef {
		t.Errorf("jal -8 encoded %#08x, want 0xff9ff0ef", w)
	}
}

// TestRoundTripAllInsns decodes every encoding the assembler produces
// back to the same instruction, across all embedded architectures.
func TestDisasmRoundTripTiny32(t *testing.T) {
	a := arch.MustLoad("tiny32")
	d := decoder.New(a)
	lines := []string{
		"add r1, r2, r3",
		"addi r1, r2, -42",
		"lw r5, 16(r14)",
		"sw r5, -4(r14)",
		"li r7, 1000",
		"halt",
		"trap 3",
		"jr r9",
	}
	for _, line := range lines {
		data := encodeOne(t, "tiny32", line)
		dec, err := d.Decode(data)
		if err != nil {
			t.Errorf("%s: %v", line, err)
			continue
		}
		back := decoder.Disasm(dec, 0)
		// Re-assemble the disassembly; it must produce identical bytes.
		data2 := encodeOne(t, "tiny32", back)
		if string(data) != string(data2) {
			t.Errorf("%s -> %q -> % x != % x", line, back, data2, data)
		}
	}
}

func TestDecodeUnknownBytes(t *testing.T) {
	d := decoder.New(arch.MustLoad("rv32i"))
	if _, err := d.Decode([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("all-ones word decoded on rv32i")
	}
	var nm *decoder.ErrNoMatch
	_, err := d.Decode([]byte{0xff, 0xff, 0xff, 0xff})
	if !errorsAs(err, &nm) {
		t.Errorf("error type %T", err)
	}
}

func errorsAs(err error, target **decoder.ErrNoMatch) bool {
	if e, ok := err.(*decoder.ErrNoMatch); ok {
		*target = e
		return true
	}
	return false
}

// TestM16VariableLengthDecode checks that the decoder prefers the longer
// encoding and reports correct lengths on a mixed stream.
func TestM16VariableLengthDecode(t *testing.T) {
	a := arch.MustLoad("m16")
	p, err := asm.New(a).Assemble("vl.s", `
_start:
	mov g0, g1     ; 16-bit
	ldi g2, -7     ; 32-bit (immediate extension word)
	halt           ; 16-bit
`)
	if err != nil {
		t.Fatal(err)
	}
	d := decoder.New(a)
	data := p.Segments[0].Data
	wantLens := []int{2, 4, 2}
	wantNames := []string{"mov", "ldi", "halt"}
	off := 0
	for i, want := range wantLens {
		dec, err := d.Decode(data[off:])
		if err != nil {
			t.Fatal(err)
		}
		if dec.Len != want || dec.Insn.Mnemonic != wantNames[i] {
			t.Errorf("insn %d: %s len %d, want %s len %d", i, dec.Insn.Mnemonic, dec.Len, wantNames[i], want)
		}
		off += dec.Len
	}
	// Disassembly of the signed immediate prints -7.
	dec, _ := d.Decode(data[2:])
	if got := decoder.Disasm(dec, 2); got != "ldi g2, -7" {
		t.Errorf("disasm %q", got)
	}
}

// TestRelOperandDisasmShowsTarget: pc-relative operands print as
// absolute addresses.
func TestRelOperandDisasmShowsTarget(t *testing.T) {
	a := arch.MustLoad("tiny32")
	p, err := asm.New(a).Assemble("b.s", `
_start:
	beq r1, r2, target
	halt
target:
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	d := decoder.New(a)
	dec, err := d.Decode(p.Segments[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if got := decoder.Disasm(dec, 0); got != "beq r1, r2, 0x8" {
		t.Errorf("disasm %q, want target 0x8", got)
	}
}

// TestDecodeShortBuffer: fewer bytes than the longest encoding must
// still decode short instructions, and fail cleanly otherwise.
func TestDecodeShortBuffer(t *testing.T) {
	a := arch.MustLoad("m16")
	d := decoder.New(a)
	// "halt" is 0x0000 big-endian: a 2-byte buffer decodes it even though
	// the ISA has 4-byte encodings.
	dec, err := d.Decode([]byte{0x00, 0x00})
	if err != nil || dec.Insn.Mnemonic != "halt" {
		t.Fatalf("short-buffer decode: %v %v", dec, err)
	}
	if _, err := d.Decode([]byte{0x00}); err == nil {
		t.Error("1-byte buffer decoded on a 16-bit-min ISA")
	}
}

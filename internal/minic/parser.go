package minic

import "fmt"

// Parse parses a MiniC source file into a Program and checks name and
// arity rules.
func Parse(file, src string) (*Program, error) {
	toks, err := lex(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	return prog, check(file, prog)
}

type parser struct {
	file string
	toks []tok
	pos  int
}

func (p *parser) cur() tok  { return p.toks[p.pos] }
func (p *parser) next() tok { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(t tok, format string, args ...any) error {
	return &Error{File: p.file, Line: t.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) punct(text string) error {
	t := p.cur()
	if t.kind != tPunct || t.text != text {
		return p.errf(t, "expected %q, found %q", text, t.text)
	}
	p.pos++
	return nil
}

func (p *parser) atPunct(text string) bool {
	t := p.cur()
	return t.kind == tPunct && t.text == text
}

func (p *parser) keyword(word string) error {
	t := p.cur()
	if t.kind != tKeyword || t.text != word {
		return p.errf(t, "expected %q", word)
	}
	p.pos++
	return nil
}

func (p *parser) atKeyword(word string) bool {
	t := p.cur()
	return t.kind == tKeyword && t.text == word
}

func (p *parser) ident() (tok, error) {
	t := p.cur()
	if t.kind != tIdent {
		return t, p.errf(t, "expected an identifier, found %q", t.text)
	}
	p.pos++
	return t, nil
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.cur().kind != tEOF {
		isVoid := false
		switch {
		case p.atKeyword("int"):
			p.pos++
		case p.atKeyword("void"):
			p.pos++
			isVoid = true
		default:
			return nil, p.errf(p.cur(), "expected a declaration (int/void)")
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.atPunct("(") {
			f, err := p.parseFunc(name, isVoid)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
			continue
		}
		if isVoid {
			return nil, p.errf(name, "void is only valid for functions")
		}
		g, err := p.parseGlobal(name)
		if err != nil {
			return nil, err
		}
		prog.Globals = append(prog.Globals, g)
	}
	return prog, nil
}

func (p *parser) parseGlobal(name tok) (*Global, error) {
	g := &Global{Name: name.text, Size: 1, Line: name.line}
	if p.atPunct("[") {
		p.pos++
		n := p.cur()
		if n.kind != tNumber || n.num <= 0 {
			return nil, p.errf(n, "array size must be a positive literal")
		}
		p.pos++
		g.Size = int(n.num)
		if err := p.punct("]"); err != nil {
			return nil, err
		}
	}
	if p.atPunct("=") {
		p.pos++
		if g.Size == 1 {
			v, err := p.constant()
			if err != nil {
				return nil, err
			}
			g.Init = []int64{v}
		} else {
			if err := p.punct("{"); err != nil {
				return nil, err
			}
			for !p.atPunct("}") {
				v, err := p.constant()
				if err != nil {
					return nil, err
				}
				g.Init = append(g.Init, v)
				if p.atPunct(",") {
					p.pos++
				}
			}
			p.pos++
			if len(g.Init) > g.Size {
				return nil, p.errf(name, "too many initializers for %s[%d]", g.Name, g.Size)
			}
		}
	}
	return g, p.punct(";")
}

// constant parses a (possibly negated) integer literal.
func (p *parser) constant() (int64, error) {
	neg := false
	if p.atPunct("-") {
		p.pos++
		neg = true
	}
	t := p.cur()
	if t.kind != tNumber {
		return 0, p.errf(t, "expected a constant")
	}
	p.pos++
	if neg {
		return -t.num, nil
	}
	return t.num, nil
}

func (p *parser) parseFunc(name tok, isVoid bool) (*Func, error) {
	f := &Func{Name: name.text, Void: isVoid, Line: name.line}
	p.pos++ // (
	for !p.atPunct(")") {
		if err := p.keyword("int"); err != nil {
			return nil, err
		}
		pn, err := p.ident()
		if err != nil {
			return nil, err
		}
		f.Params = append(f.Params, pn.text)
		if p.atPunct(",") {
			p.pos++
		}
	}
	p.pos++ // )
	if err := p.punct("{"); err != nil {
		return nil, err
	}
	// Leading local declarations.
	for p.atKeyword("int") {
		p.pos++
		for {
			ln, err := p.ident()
			if err != nil {
				return nil, err
			}
			f.Locals = append(f.Locals, ln.text)
			if p.atPunct(",") {
				p.pos++
				continue
			}
			break
		}
		if err := p.punct(";"); err != nil {
			return nil, err
		}
	}
	body, err := p.parseBlockRest()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// parseBlockRest parses statements up to and including the closing brace.
func (p *parser) parseBlockRest() ([]Stmt, error) {
	var out []Stmt
	for !p.atPunct("}") {
		if p.cur().kind == tEOF {
			return nil, p.errf(p.cur(), "unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.pos++ // }
	return out, nil
}

func (p *parser) parseBlockOrStmt() ([]Stmt, error) {
	if p.atPunct("{") {
		p.pos++
		return p.parseBlockRest()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.atKeyword("if"):
		p.pos++
		if err := p.punct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.punct(")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlockOrStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then, Line: t.line}
		if p.atKeyword("else") {
			p.pos++
			els, err := p.parseBlockOrStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case p.atKeyword("while"):
		p.pos++
		if err := p.punct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.punct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlockOrStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: t.line}, nil
	case p.atKeyword("return"):
		p.pos++
		st := &ReturnStmt{Line: t.line}
		if !p.atPunct(";") {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Value = v
		}
		return st, p.punct(";")
	}
	// Assignment or expression statement: disambiguate by lookahead.
	if t.kind == tIdent {
		save := p.pos
		name, _ := p.ident()
		var index Expr
		if p.atPunct("[") {
			p.pos++
			ix, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.punct("]"); err != nil {
				return nil, err
			}
			index = ix
		}
		if p.atPunct("=") {
			p.pos++
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.punct(";"); err != nil {
				return nil, err
			}
			return &AssignStmt{Name: name.text, Index: index, Value: val, Line: t.line}, nil
		}
		p.pos = save // not an assignment: reparse as an expression
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{X: x, Line: t.line}, p.punct(";")
}

// Binary operator precedence levels, loosest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBin(0) }

func (p *parser) parseBin(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	x, err := p.parseBin(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tPunct || !contains(precLevels[level], t.text) {
			return x, nil
		}
		p.pos++
		y, err := p.parseBin(level + 1)
		if err != nil {
			return nil, err
		}
		x = &BinExpr{Op: t.text, X: x, Y: y, Line: t.line}
	}
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.kind == tPunct && (t.text == "-" || t.text == "!") {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.text, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tNumber:
		p.pos++
		return &NumExpr{Val: t.num}, nil
	case t.kind == tPunct && t.text == "(":
		p.pos++
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return x, p.punct(")")
	case t.kind == tIdent:
		p.pos++
		switch {
		case p.atPunct("("):
			p.pos++
			call := &CallExpr{Name: t.text, Line: t.line}
			for !p.atPunct(")") {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.atPunct(",") {
					p.pos++
				}
			}
			p.pos++
			return call, nil
		case p.atPunct("["):
			p.pos++
			ix, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.punct("]"); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: t.text, Index: ix, Line: t.line}, nil
		}
		return &VarExpr{Name: t.text, Line: t.line}, nil
	}
	return nil, p.errf(t, "expected an expression, found %q", t.text)
}

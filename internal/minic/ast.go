package minic

// Program is a parsed MiniC translation unit.
type Program struct {
	Globals []*Global
	Funcs   []*Func
}

// Func returns the named function, or nil.
func (p *Program) Func(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global is a module-level int or int array.
type Global struct {
	Name string
	Size int     // 1 for scalars, >1 for arrays
	Init []int64 // optional initializer values
	Line int
}

// Func is a function definition.
type Func struct {
	Name   string
	Params []string
	Locals []string // declared local ints, in declaration order
	Body   []Stmt
	Void   bool
	Line   int
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// AssignStmt is `lhs = value;` where lhs is a variable or array element.
type AssignStmt struct {
	Name  string
	Index Expr // nil for scalars
	Value Expr
	Line  int
}

// IfStmt is `if (cond) { ... } else { ... }`.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// WhileStmt is `while (cond) { ... }`.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Line int
}

// ReturnStmt is `return;` or `return e;`.
type ReturnStmt struct {
	Value Expr // nil for void returns
	Line  int
}

// ExprStmt is an expression evaluated for effect (a call).
type ExprStmt struct {
	X    Expr
	Line int
}

func (*AssignStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()  {}
func (*ReturnStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// NumExpr is an integer literal.
type NumExpr struct{ Val int64 }

// VarExpr reads a parameter, local or global scalar.
type VarExpr struct {
	Name string
	Line int
}

// IndexExpr reads a global array element.
type IndexExpr struct {
	Name  string
	Index Expr
	Line  int
}

// UnaryExpr is -x or !x or ~x.
type UnaryExpr struct {
	Op string
	X  Expr
}

// BinExpr is a binary operation; Op is the C operator text.
type BinExpr struct {
	Op   string
	X, Y Expr
	Line int
}

// CallExpr calls a function or builtin.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

func (*NumExpr) exprNode()   {}
func (*VarExpr) exprNode()   {}
func (*IndexExpr) exprNode() {}
func (*UnaryExpr) exprNode() {}
func (*BinExpr) exprNode()   {}
func (*CallExpr) exprNode()  {}

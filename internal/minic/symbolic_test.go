package minic_test

import (
	"testing"

	"repro/arch"
	"repro/internal/asm"
	"repro/internal/checker"
	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/minic"
	"repro/internal/prog"
	"repro/internal/smt"
)

func compileTo(t *testing.T, targetName, src string) *prog.Program {
	t.Helper()
	asmText, err := minic.CompileSource("test.c", src, targetName)
	if err != nil {
		t.Fatalf("%s: %v", targetName, err)
	}
	p, err := asm.New(arch.MustLoad(targetName)).Assemble("test.s", asmText)
	if err != nil {
		t.Fatalf("%s: %v\n%s", targetName, err, asmText)
	}
	return p
}

// TestSymbolicExecutionOfCompiledBinaries is the paper's setting end to
// end: a C-level program is compiled per ISA and the generated engines
// explore the binaries. The path structure must match across ISAs, and
// solved inputs must replay concretely.
func TestSymbolicExecutionOfCompiledBinaries(t *testing.T) {
	src := `
// Classify a 2-byte input: returns the class id 0..3.
int classify(int a, int b) {
	if (a < 64) {
		if (b < 64) return 0;
		return 1;
	}
	if (b < 64) return 2;
	return 3;
}

void main() {
	int a, b;
	a = input();
	b = input();
	output(classify(a, b));
	exit();
}
`
	counts := map[string]int{}
	for _, target := range minic.Targets() {
		p := compileTo(t, target, src)
		a := arch.MustLoad(target)
		e := core.NewEngine(a, p, core.Options{InputBytes: 2, MaxSteps: 3000})
		r, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		exits := 0
		for _, pth := range r.Paths {
			if pth.Status != core.StatusExit {
				t.Errorf("%s: path %d ended %v (%s)", target, pth.ID, pth.Status, pth.Fault)
				continue
			}
			exits++
			// Solve and replay.
			res, err := e.Solver.Check(pth.PathCond...)
			if err != nil || res != smt.Sat {
				t.Errorf("%s: path unsat", target)
				continue
			}
			model := e.Solver.Model()
			input := []byte{byte(model["in0"]), byte(model["in1"])}
			var want []byte
			for _, o := range pth.Output {
				want = append(want, byte(expr.Eval(o, model)))
			}
			m := conc.NewMachine(a)
			m.LoadProgram(p)
			m.Input = input
			stop := m.Run(100000)
			if stop.Kind != conc.StopExit || string(m.Output) != string(want) {
				t.Errorf("%s: replay of %v gave %v/% x, symbolic predicted % x",
					target, input, stop, m.Output, want)
			}
		}
		counts[target] = exits
	}
	// classify has exactly 4 behaviours.
	for target, n := range counts {
		if n != 4 {
			t.Errorf("%s: %d exit paths, want 4", target, n)
		}
	}
}

// TestBugInCompiledBinary plants a C-level division bug and checks the
// binary-level checker finds it on every ISA with a reproducing input.
func TestBugInCompiledBinary(t *testing.T) {
	src := `
void main() {
	int n;
	n = input();
	output(100 / n);   // n == 0 divides by zero
	exit();
}
`
	for _, target := range minic.Targets() {
		p := compileTo(t, target, src)
		a := arch.MustLoad(target)
		e := core.NewEngine(a, p, core.Options{InputBytes: 1, MaxSteps: 3000})
		e.AddChecker(checker.DivByZero{})
		r, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, b := range r.Bugs {
			if b.Check == "div-by-zero" {
				found = true
				if len(b.Input) < 1 || b.Input[0] != 0 {
					t.Errorf("%s: reproducing input %v, want leading 0", target, b.Input)
				}
			}
		}
		if !found {
			t.Errorf("%s: compiled div-by-zero not found (bugs %v)", target, r.Bugs)
		}
	}
}

// TestCompiledCrackmeSolvable compiles a C password check and lets the
// engine synthesize the accepting input.
func TestCompiledCrackmeSolvable(t *testing.T) {
	src := `
int check(int a, int b, int c) {
	if (a * 256 + b == 0x4142) {
		if ((c ^ a) == 3) return 1;
	}
	return 0;
}

void main() {
	int a, b, c;
	a = input();
	b = input();
	c = input();
	if (check(a, b, c)) output('!');
	exit();
}
`
	for _, target := range []string{"tiny32", "rv32i"} { // 0x4142 needs >16-bit arithmetic
		p := compileTo(t, target, src)
		a := arch.MustLoad(target)
		e := core.NewEngine(a, p, core.Options{InputBytes: 3, MaxSteps: 3000})
		r, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		solved := false
		for _, pth := range r.Paths {
			if len(pth.Output) == 0 {
				continue
			}
			res, err := e.Solver.Check(pth.PathCond...)
			if err != nil || res != smt.Sat {
				continue
			}
			m := e.Solver.Model()
			in := []byte{byte(m["in0"]), byte(m["in1"]), byte(m["in2"])}
			if in[0] == 'A' && in[1] == 'B' && in[2] == ('A'^3) {
				solved = true
			} else {
				t.Errorf("%s: solved input %q does not satisfy the check", target, in)
			}
		}
		if !solved {
			t.Errorf("%s: accepting input not synthesized", target)
		}
	}
}

// TestConcolicOnCompiledBinary runs the generational search on compiled
// code.
func TestConcolicOnCompiledBinary(t *testing.T) {
	src := `
void main() {
	int a;
	a = input();
	if (a == 77) output(1); else output(0);
	exit();
}
`
	for _, target := range minic.Targets() {
		p := compileTo(t, target, src)
		e := core.NewEngine(arch.MustLoad(target), p, core.Options{InputBytes: 1, MaxSteps: 3000})
		rep, err := e.Concolic(nil, 10)
		if err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		hit := false
		for _, pth := range rep.Paths {
			if len(pth.Output) == 1 && pth.Output[0] == 1 {
				hit = true
				if pth.Input[0] != 77 {
					t.Errorf("%s: magic input %v", target, pth.Input)
				}
			}
		}
		if !hit {
			t.Errorf("%s: concolic search missed the magic byte (%d runs)", target, len(rep.Paths))
		}
	}
}

// TestFibCompiledAcrossISAs cross-checks a compute-heavy compiled
// workload: fib(12) concrete output must agree on all targets, and the
// symbolic engine (with no symbolic input) must agree with the emulator.
func TestFibCompiledAcrossISAs(t *testing.T) {
	src := `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
void main() {
	output(fib(12) % 256);
	exit();
}
`
	const want = 144 % 256
	for _, target := range minic.Targets() {
		p := compileTo(t, target, src)
		a := arch.MustLoad(target)

		m := conc.NewMachine(a)
		m.LoadProgram(p)
		stop := m.Run(3_000_000)
		if stop.Kind != conc.StopExit || len(m.Output) != 1 || m.Output[0] != want {
			t.Errorf("%s: emulator %v output %v", target, stop, m.Output)
		}

		e := core.NewEngine(a, p, core.Options{MaxSteps: 3_000_000})
		r, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Paths) != 1 || len(r.Paths[0].Output) != 1 {
			t.Fatalf("%s: symbolic paths %v", target, r.Paths)
		}
		if v := expr.Eval(r.Paths[0].Output[0], expr.Env{}); v != want {
			t.Errorf("%s: symbolic output %d", target, v)
		}
	}
}

package minic

import "fmt"

// builtins maps builtin names to their arities; -1 marks "returns no
// value" entries combined below.
var builtinArity = map[string]int{"input": 0, "output": 1, "exit": 0}

// builtinVoid marks builtins unusable as values.
var builtinVoid = map[string]bool{"output": true, "exit": true}

type checkCtx struct {
	file    string
	prog    *Program
	globals map[string]*Global
	funcs   map[string]*Func
}

func (c *checkCtx) errf(line int, format string, args ...any) error {
	return &Error{File: c.file, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// check resolves names and enforces arity and value/void rules.
func check(file string, prog *Program) error {
	c := &checkCtx{file: file, prog: prog,
		globals: map[string]*Global{}, funcs: map[string]*Func{}}
	for _, g := range prog.Globals {
		if c.globals[g.Name] != nil {
			return c.errf(g.Line, "global %s redeclared", g.Name)
		}
		c.globals[g.Name] = g
	}
	for _, f := range prog.Funcs {
		if c.funcs[f.Name] != nil {
			return c.errf(f.Line, "function %s redeclared", f.Name)
		}
		if builtinArity[f.Name] != 0 || f.Name == "input" {
			return c.errf(f.Line, "%s is a builtin and cannot be redefined", f.Name)
		}
		c.funcs[f.Name] = f
	}
	for _, f := range prog.Funcs {
		scope := map[string]bool{}
		for _, p := range f.Params {
			if scope[p] {
				return c.errf(f.Line, "%s: parameter %s repeated", f.Name, p)
			}
			scope[p] = true
		}
		for _, l := range f.Locals {
			if scope[l] {
				return c.errf(f.Line, "%s: local %s shadows a parameter or local", f.Name, l)
			}
			scope[l] = true
		}
		if err := c.stmts(f, scope, f.Body); err != nil {
			return err
		}
	}
	return nil
}

func (c *checkCtx) stmts(f *Func, scope map[string]bool, ss []Stmt) error {
	for _, s := range ss {
		if err := c.stmt(f, scope, s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checkCtx) stmt(f *Func, scope map[string]bool, s Stmt) error {
	switch s := s.(type) {
	case *AssignStmt:
		if s.Index != nil {
			g := c.globals[s.Name]
			if g == nil || g.Size == 1 {
				return c.errf(s.Line, "%s is not a global array", s.Name)
			}
			if err := c.expr(f, scope, s.Index); err != nil {
				return err
			}
		} else if !scope[s.Name] {
			g := c.globals[s.Name]
			if g == nil {
				return c.errf(s.Line, "unknown variable %s", s.Name)
			}
			if g.Size != 1 {
				return c.errf(s.Line, "array %s needs an index", s.Name)
			}
		}
		return c.expr(f, scope, s.Value)
	case *IfStmt:
		if err := c.expr(f, scope, s.Cond); err != nil {
			return err
		}
		if err := c.stmts(f, scope, s.Then); err != nil {
			return err
		}
		return c.stmts(f, scope, s.Else)
	case *WhileStmt:
		if err := c.expr(f, scope, s.Cond); err != nil {
			return err
		}
		return c.stmts(f, scope, s.Body)
	case *ReturnStmt:
		if f.Void && s.Value != nil {
			return c.errf(s.Line, "%s is void but returns a value", f.Name)
		}
		if !f.Void && s.Value == nil {
			return c.errf(s.Line, "%s must return a value", f.Name)
		}
		if s.Value != nil {
			return c.expr(f, scope, s.Value)
		}
		return nil
	case *ExprStmt:
		// Statement position: void calls allowed.
		if call, ok := s.X.(*CallExpr); ok {
			return c.call(f, scope, call, true)
		}
		return c.expr(f, scope, s.X)
	}
	return fmt.Errorf("minic: unhandled statement %T", s)
}

func (c *checkCtx) expr(f *Func, scope map[string]bool, e Expr) error {
	switch e := e.(type) {
	case *NumExpr:
		return nil
	case *VarExpr:
		if scope[e.Name] {
			return nil
		}
		g := c.globals[e.Name]
		if g == nil {
			return c.errf(e.Line, "unknown variable %s", e.Name)
		}
		if g.Size != 1 {
			return c.errf(e.Line, "array %s needs an index", e.Name)
		}
		return nil
	case *IndexExpr:
		g := c.globals[e.Name]
		if g == nil || g.Size == 1 {
			return c.errf(e.Line, "%s is not a global array", e.Name)
		}
		return c.expr(f, scope, e.Index)
	case *UnaryExpr:
		return c.expr(f, scope, e.X)
	case *BinExpr:
		if err := c.expr(f, scope, e.X); err != nil {
			return err
		}
		return c.expr(f, scope, e.Y)
	case *CallExpr:
		return c.call(f, scope, e, false)
	}
	return fmt.Errorf("minic: unhandled expression %T", e)
}

func (c *checkCtx) call(f *Func, scope map[string]bool, e *CallExpr, stmtPos bool) error {
	if arity, ok := builtinArity[e.Name]; ok {
		if len(e.Args) != arity {
			return c.errf(e.Line, "%s takes %d argument(s)", e.Name, arity)
		}
		if builtinVoid[e.Name] && !stmtPos {
			return c.errf(e.Line, "%s does not return a value", e.Name)
		}
	} else {
		callee := c.funcs[e.Name]
		if callee == nil {
			return c.errf(e.Line, "unknown function %s", e.Name)
		}
		if len(e.Args) != len(callee.Params) {
			return c.errf(e.Line, "%s takes %d argument(s), got %d", e.Name, len(callee.Params), len(e.Args))
		}
		if callee.Void && !stmtPos {
			return c.errf(e.Line, "void function %s used as a value", e.Name)
		}
	}
	for _, a := range e.Args {
		if err := c.expr(f, scope, a); err != nil {
			return err
		}
	}
	return nil
}

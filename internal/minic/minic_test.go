package minic_test

import (
	"strings"
	"testing"

	"repro/arch"
	"repro/internal/asm"
	"repro/internal/conc"
	"repro/internal/minic"
)

// compileRun compiles src for the target, assembles it, runs it on the
// concrete emulator with the given input, and returns the output bytes.
func compileRun(t *testing.T, targetName, src string, input []byte) []byte {
	t.Helper()
	asmText, err := minic.CompileSource("test.c", src, targetName)
	if err != nil {
		t.Fatalf("%s: compile: %v", targetName, err)
	}
	a := arch.MustLoad(targetName)
	p, err := asm.New(a).Assemble("test.s", asmText)
	if err != nil {
		t.Fatalf("%s: assemble: %v\n%s", targetName, err, asmText)
	}
	m := conc.NewMachine(a)
	m.LoadProgram(p)
	m.Input = input
	stop := m.Run(1_000_000)
	if stop.Kind != conc.StopExit && stop.Kind != conc.StopHalt {
		t.Fatalf("%s: run: %v\n%s", targetName, stop, asmText)
	}
	return m.Output
}

// runAll compiles and runs on every target, demanding identical output.
func runAll(t *testing.T, src string, input []byte, want []byte) {
	t.Helper()
	for _, target := range minic.Targets() {
		got := compileRun(t, target, src, input)
		if string(got) != string(want) {
			t.Errorf("%s: output % x, want % x", target, got, want)
		}
	}
}

func TestHelloByte(t *testing.T) {
	runAll(t, `
void main() {
	output('A');
	output('B' + 1);
}
`, nil, []byte{'A', 'C'})
}

func TestArithmetic(t *testing.T) {
	runAll(t, `
void main() {
	output((3 + 4) * 5 - 2);        // 33
	output(100 / 7);                // 14
	output(100 % 7);                // 2
	output((1 << 5) | 3);           // 35
	output((0xff ^ 0xf0) & 0x1f);   // 15
	output(10 - 2 - 3);             // 5 (left assoc)
	output(2 + 3 * 4);              // 14 (precedence)
}
`, nil, []byte{33, 14, 2, 35, 15, 5, 14})
}

func TestComparisonsAndLogic(t *testing.T) {
	runAll(t, `
void main() {
	output(3 < 5);
	output(5 < 3);
	output(5 <= 5);
	output(5 > 3);
	output(3 >= 5);
	output(4 == 4);
	output(4 != 4);
	output(!0);
	output(!7);
	output(1 && 2);
	output(1 && 0);
	output(0 || 3);
	output(0 || 0);
}
`, nil, []byte{1, 0, 1, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0})
}

func TestNegativeNumbers(t *testing.T) {
	// -8 / 3 is -2 on the signed targets; m16 divides unsigned, so keep
	// this case off m16 and test signedness separately.
	for _, target := range []string{"tiny32", "rv32i"} {
		got := compileRun(t, target, `
void main() {
	int x;
	x = -8;
	output(x / 3 + 10);      // -2 + 10 = 8
	output(x % 3 + 10);      // -2 + 10 = 8
	output((x >> 1) + 20);   // -4 + 20 = 16 (arithmetic shift)
	output(0 - x);           // 8
}
`, nil)
		want := []byte{8, 8, 16, 8}
		if string(got) != string(want) {
			t.Errorf("%s: % x, want % x", target, got, want)
		}
	}
}

func TestControlFlow(t *testing.T) {
	runAll(t, `
void main() {
	int i, sum;
	sum = 0;
	i = 1;
	while (i <= 10) {
		if (i % 2 == 0) sum = sum + i;
		i = i + 1;
	}
	output(sum);     // 2+4+6+8+10 = 30
	if (sum > 100) output(1); else output(2);
}
`, nil, []byte{30, 2})
}

func TestFunctionsAndRecursion(t *testing.T) {
	runAll(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}

int twice(int x) { return 2 * x; }

void main() {
	output(fib(10));        // 55
	output(twice(fib(5)));  // 2*5 = 10
}
`, nil, []byte{55, 10})
}

func TestGlobalsAndArrays(t *testing.T) {
	runAll(t, `
int counter = 3;
int table[8] = { 2, 4, 8, 16 };

void bump() { counter = counter + 1; }

void main() {
	int i;
	bump();
	bump();
	output(counter);       // 5
	i = 4;
	while (i < 8) {
		table[i] = table[i - 1] + 1;
		i = i + 1;
	}
	output(table[3]);      // 16
	output(table[7]);      // 20
}
`, nil, []byte{5, 16, 20})
}

func TestInputDriven(t *testing.T) {
	src := `
void main() {
	int c;
	c = input();
	while (c >= 0) {
		if (c >= 'a') {
			if (c <= 'z') c = c - 32;   // to upper
		}
		output(c);
		c = input();
	}
}
`
	// The EOF marker is the all-ones word, i.e. -1 at every width.
	runAll(t, src, []byte("aZ9"), []byte("AZ9"))
}

func TestEuclidGCD(t *testing.T) {
	runAll(t, `
int gcd(int a, int b) {
	int t;
	while (b != 0) {
		t = b;
		b = a % b;
		a = t;
	}
	return a;
}
void main() {
	output(gcd(48, 36));   // 12
	output(gcd(7, 13));    // 1
}
`, nil, []byte{12, 1})
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"void main() { x = 1; }", "unknown variable"},
		{"void main() { f(); }", "unknown function"},
		{"int f(int a) { return a; } void main() { f(); }", "takes 1 argument"},
		{"void f() {} void main() { output(f()); }", "used as a value"},
		{"void main() { return 1; }", "void but returns"},
		{"int f() { return; } void main() { f(); }", "must return"},
		{"int input() { return 0; } void main() {}", "builtin"},
		{"int g; int g; void main() {}", "redeclared"},
		{"void main() { int x; }", ""}, // fine: trailing decl only
	}
	for _, c := range cases {
		_, err := minic.CompileSource("t.c", c.src, "tiny32")
		if c.want == "" {
			if err != nil {
				t.Errorf("%q: unexpected error %v", c.src, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestNoMain(t *testing.T) {
	if _, err := minic.CompileSource("t.c", "int f() { return 0; }", "tiny32"); err == nil {
		t.Error("program without main compiled")
	}
}

func TestUnknownTarget(t *testing.T) {
	if _, err := minic.CompileSource("t.c", "void main() {}", "pdp11"); err == nil {
		t.Error("unknown target accepted")
	}
}

package minic

import (
	"fmt"
	"strings"
)

// Compile translates a MiniC program to assembly for the named target
// architecture ("tiny32", "rv32i" or "m16"). The program must define
// main (with no parameters); execution enters at `_start`, which sets up
// the stack, calls main, and exits through the trap convention.
func Compile(prog *Program, targetName string) (string, error) {
	t, err := targetFor(targetName)
	if err != nil {
		return "", err
	}
	if f := prog.Func("main"); f == nil {
		return "", fmt.Errorf("minic: no main function")
	} else if len(f.Params) != 0 {
		return "", fmt.Errorf("minic: main must take no parameters")
	}
	g := &gen{prog: prog, t: t}
	g.program()
	return g.out.String(), nil
}

// CompileSource parses and compiles in one step.
func CompileSource(file, src, targetName string) (string, error) {
	prog, err := Parse(file, src)
	if err != nil {
		return "", err
	}
	return Compile(prog, targetName)
}

// varSlot locates a variable for the backend.
type varSlot struct {
	global string // non-empty for global scalars (the label)
	off    int    // frame offset in words: >=0 args, <0 locals
}

// target is the per-ISA code generation backend. All hooks append
// assembly lines through gen.line.
type target interface {
	name() string
	wordBytes() int

	// start emits the _start stub: stack setup, call main, exit trap.
	start(g *gen)
	// prologue/epilogue bracket a function body; the epilogue's label is
	// retLabel(f) and it must return with the return value in the
	// target's result register (placed there by ret).
	prologue(g *gen, f *Func)
	epilogue(g *gen, f *Func)

	pushConst(g *gen, v int64)
	pushVar(g *gen, s varSlot)
	storeVar(g *gen, s varSlot)
	// pushElem pops an index and pushes word at label + index*W;
	// storeElem pops a value then an index and stores it there.
	pushElem(g *gen, label string)
	storeElem(g *gen, label string)

	// binary pops y then x and pushes x OP y. op is one of
	// + - * / % & | ^ << >> == != < <= > >= (comparisons push 0/1,
	// signed where applicable).
	binary(g *gen, op string)
	// unary modifies the top of stack: "-" or "!".
	unary(g *gen, op string)
	// drop pops and discards the top of stack.
	drop(g *gen)

	jump(g *gen, label string)
	// jumpIfZero pops the top of stack and jumps when it is zero.
	jumpIfZero(g *gen, label string)

	// call invokes fn with nargs already pushed; it pops the args and,
	// when wantValue, pushes the result.
	call(g *gen, fn string, nargs int, wantValue bool)
	// ret pops the return value (when hasValue) into the result register
	// and jumps to the epilogue.
	ret(g *gen, f *Func, hasValue bool)

	// input pushes one input byte (-1 on EOF); output pops and writes a
	// byte; exit stops the program.
	input(g *gen)
	output(g *gen)
	exit(g *gen)

	// global emits the data definition for one global.
	global(g *gen, gl *Global)
}

type gen struct {
	prog   *Program
	t      target
	out    strings.Builder
	f      *Func
	labelN int
}

func (g *gen) line(format string, args ...any) {
	fmt.Fprintf(&g.out, format+"\n", args...)
}

func (g *gen) label(prefix string) string {
	g.labelN++
	return fmt.Sprintf(".L%s%d", prefix, g.labelN)
}

func retLabel(f *Func) string { return "mc_" + f.Name + "_ret" }

// fnLabel prefixes user functions to avoid clashing with mnemonics and
// assembler keywords.
func fnLabel(name string) string { return "mc_" + name }

func globalLabel(name string) string { return "gv_" + name }

func (g *gen) program() {
	g.line("// MiniC compiler output, target %s", g.t.name())
	g.t.start(g)
	for _, f := range g.prog.Funcs {
		g.f = f
		g.line("")
		g.line("%s:", fnLabel(f.Name))
		g.t.prologue(g, f)
		g.stmts(f.Body)
		// Implicit return: int functions fall out with value 0.
		if !f.Void {
			g.t.pushConst(g, 0)
		}
		g.t.ret(g, f, !f.Void)
		g.t.epilogue(g, f)
	}
	g.line("")
	for _, gl := range g.prog.Globals {
		g.t.global(g, gl)
	}
}

// slotOf resolves a scalar variable reference in the current function.
func (g *gen) slotOf(name string) varSlot {
	for i, p := range g.f.Params {
		if p == name {
			// Args pushed left-to-right: first arg is deepest.
			return varSlot{off: len(g.f.Params) - 1 - i}
		}
	}
	for i, l := range g.f.Locals {
		if l == name {
			return varSlot{off: -(i + 1)}
		}
	}
	return varSlot{global: globalLabel(name)}
}

func (g *gen) stmts(ss []Stmt) {
	for _, s := range ss {
		g.stmt(s)
	}
}

func (g *gen) stmt(s Stmt) {
	switch s := s.(type) {
	case *AssignStmt:
		if s.Index != nil {
			g.expr(s.Index)
			g.expr(s.Value)
			g.t.storeElem(g, globalLabel(s.Name))
		} else {
			g.expr(s.Value)
			g.t.storeVar(g, g.slotOf(s.Name))
		}
	case *IfStmt:
		els := g.label("else")
		end := g.label("endif")
		g.expr(s.Cond)
		g.t.jumpIfZero(g, els)
		g.stmts(s.Then)
		if len(s.Else) > 0 {
			g.t.jump(g, end)
		}
		g.line("%s:", els)
		if len(s.Else) > 0 {
			g.stmts(s.Else)
			g.line("%s:", end)
		}
	case *WhileStmt:
		top := g.label("loop")
		end := g.label("endloop")
		g.line("%s:", top)
		g.expr(s.Cond)
		g.t.jumpIfZero(g, end)
		g.stmts(s.Body)
		g.t.jump(g, top)
		g.line("%s:", end)
	case *ReturnStmt:
		if s.Value != nil {
			g.expr(s.Value)
		}
		g.t.ret(g, g.f, s.Value != nil)
	case *ExprStmt:
		// Calls in statement position discard any result.
		if call, ok := s.X.(*CallExpr); ok {
			g.call(call, false)
			return
		}
		g.expr(s.X)
		g.t.drop(g)
	}
}

func (g *gen) expr(e Expr) {
	switch e := e.(type) {
	case *NumExpr:
		g.t.pushConst(g, e.Val)
	case *VarExpr:
		g.t.pushVar(g, g.slotOf(e.Name))
	case *IndexExpr:
		g.expr(e.Index)
		g.t.pushElem(g, globalLabel(e.Name))
	case *UnaryExpr:
		g.expr(e.X)
		g.t.unary(g, e.Op)
	case *BinExpr:
		switch e.Op {
		case "&&":
			fail := g.label("andf")
			end := g.label("ande")
			g.expr(e.X)
			g.t.jumpIfZero(g, fail)
			g.expr(e.Y)
			g.t.jumpIfZero(g, fail)
			g.t.pushConst(g, 1)
			g.t.jump(g, end)
			g.line("%s:", fail)
			g.t.pushConst(g, 0)
			g.line("%s:", end)
		case "||":
			taken := g.label("ort")
			check2 := g.label("or2")
			end := g.label("ore")
			g.expr(e.X)
			g.t.jumpIfZero(g, check2)
			g.t.jump(g, taken)
			g.line("%s:", check2)
			g.expr(e.Y)
			g.t.jumpIfZero(g, end+"f")
			g.line("%s:", taken)
			g.t.pushConst(g, 1)
			g.t.jump(g, end)
			g.line("%sf:", end)
			g.t.pushConst(g, 0)
			g.line("%s:", end)
		default:
			g.expr(e.X)
			g.expr(e.Y)
			g.t.binary(g, e.Op)
		}
	case *CallExpr:
		g.call(e, true)
	}
}

func (g *gen) call(e *CallExpr, wantValue bool) {
	switch e.Name {
	case "input":
		g.t.input(g)
		if !wantValue {
			g.t.drop(g)
		}
		return
	case "output":
		g.expr(e.Args[0])
		g.t.output(g)
		return
	case "exit":
		g.t.exit(g)
		return
	}
	for _, a := range e.Args {
		g.expr(a)
	}
	callee := g.prog.Func(e.Name)
	g.t.call(g, fnLabel(e.Name), len(e.Args), wantValue && !callee.Void)
}

// Package minic implements MiniC, a small C-like language with a
// retargetable code generator. The evaluation workloads can be written
// once in MiniC and compiled to assembly for every supported
// architecture, which is how the paper's setting — symbolic execution of
// compiler-produced binaries — is reproduced without a proprietary
// toolchain.
//
// The language: `int` (one machine word) and global `int` arrays;
// functions with value parameters; `if`/`else`, `while`, `return`,
// assignment and expression statements; the usual C operators with
// C precedence (arithmetic is signed; `/` and `%` use the target's
// division semantics); short-circuit `&&`/`||`; and three builtins
// wired to the trap convention: `input()` (next byte, -1 on EOF),
// `output(x)` (write low byte), `exit()`.
package minic

import (
	"fmt"
	"strings"
	"unicode"
)

// Error is a source-located MiniC error.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg) }

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tPunct // operators and delimiters, text in tok.text
	tKeyword
)

type tok struct {
	kind tokKind
	text string
	num  int64
	line int
}

var keywords = map[string]bool{
	"int": true, "void": true, "if": true, "else": true,
	"while": true, "return": true,
}

// twoCharOps are matched before single characters.
var twoCharOps = []string{"==", "!=", "<=", ">=", "&&", "||", "<<", ">>"}

func lex(file, src string) ([]tok, error) {
	var toks []tok
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= len(src) {
				return nil, &Error{file, line, "unterminated block comment"}
			}
			i += 2
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			word := src[i:j]
			k := tIdent
			if keywords[word] {
				k = tKeyword
			}
			toks = append(toks, tok{kind: k, text: word, line: line})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			base := int64(10)
			if c == '0' && j+1 < len(src) && (src[j+1] == 'x' || src[j+1] == 'X') {
				base = 16
				j += 2
			}
			var v int64
			digits := 0
			for j < len(src) {
				d := int64(-1)
				ch := src[j]
				switch {
				case ch >= '0' && ch <= '9':
					d = int64(ch - '0')
				case base == 16 && ch >= 'a' && ch <= 'f':
					d = int64(ch-'a') + 10
				case base == 16 && ch >= 'A' && ch <= 'F':
					d = int64(ch-'A') + 10
				}
				if d < 0 || d >= base {
					break
				}
				v = v*base + d
				digits++
				j++
			}
			if digits == 0 {
				return nil, &Error{file, line, "malformed number"}
			}
			toks = append(toks, tok{kind: tNumber, num: v, line: line})
			i = j
		case c == '\'':
			// Character literal.
			if i+2 < len(src) && src[i+1] == '\\' && i+3 < len(src) && src[i+3] == '\'' {
				var v int64
				switch src[i+2] {
				case 'n':
					v = '\n'
				case 't':
					v = '\t'
				case '0':
					v = 0
				case '\\', '\'':
					v = int64(src[i+2])
				default:
					return nil, &Error{file, line, "unknown escape in char literal"}
				}
				toks = append(toks, tok{kind: tNumber, num: v, line: line})
				i += 4
			} else if i+2 < len(src) && src[i+2] == '\'' {
				toks = append(toks, tok{kind: tNumber, num: int64(src[i+1]), line: line})
				i += 3
			} else {
				return nil, &Error{file, line, "malformed char literal"}
			}
		default:
			matched := false
			for _, op := range twoCharOps {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, tok{kind: tPunct, text: op, line: line})
					i += 2
					matched = true
					break
				}
			}
			if matched {
				break
			}
			if strings.ContainsRune("+-*/%&|^!<>=(){}[];,", rune(c)) {
				toks = append(toks, tok{kind: tPunct, text: string(c), line: line})
				i++
				break
			}
			return nil, &Error{file, line, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, tok{kind: tEOF, line: line})
	return toks, nil
}

package minic_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/arch"
	"repro/internal/asm"
	"repro/internal/conc"
	"repro/internal/minic"
)

// refExpr is a random expression together with a reference evaluator:
// the generator builds the MiniC source text and the expected int32
// value side by side, so compiling and running it checks the whole
// pipeline (parser, precedence, code generator, ISA semantics) against
// Go's arithmetic.
type refExpr struct {
	src  string
	eval func(a, b int32) int32
}

func genRefExpr(r *rand.Rand, depth int) refExpr {
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			v := int32(r.Intn(2000) - 1000)
			return refExpr{fmt.Sprintf("%d", v), func(a, b int32) int32 { return v }}
		case 1:
			return refExpr{"a", func(a, b int32) int32 { return a }}
		default:
			return refExpr{"b", func(a, b int32) int32 { return b }}
		}
	}
	x := genRefExpr(r, depth-1)
	y := genRefExpr(r, depth-1)
	switch r.Intn(13) {
	case 0:
		return refExpr{"(" + x.src + " + " + y.src + ")",
			func(a, b int32) int32 { return x.eval(a, b) + y.eval(a, b) }}
	case 1:
		return refExpr{"(" + x.src + " - " + y.src + ")",
			func(a, b int32) int32 { return x.eval(a, b) - y.eval(a, b) }}
	case 2:
		return refExpr{"(" + x.src + " * " + y.src + ")",
			func(a, b int32) int32 { return x.eval(a, b) * y.eval(a, b) }}
	case 3:
		// Division by a positive constant avoids both the zero divisor
		// and the INT_MIN/-1 overflow.
		d := int32(r.Intn(9) + 1)
		return refExpr{"(" + x.src + fmt.Sprintf(" / %d)", d),
			func(a, b int32) int32 { return x.eval(a, b) / d }}
	case 4:
		d := int32(r.Intn(9) + 1)
		return refExpr{"(" + x.src + fmt.Sprintf(" %% %d)", d),
			func(a, b int32) int32 { return x.eval(a, b) % d }}
	case 5:
		return refExpr{"(" + x.src + " & " + y.src + ")",
			func(a, b int32) int32 { return x.eval(a, b) & y.eval(a, b) }}
	case 6:
		return refExpr{"(" + x.src + " | " + y.src + ")",
			func(a, b int32) int32 { return x.eval(a, b) | y.eval(a, b) }}
	case 7:
		return refExpr{"(" + x.src + " ^ " + y.src + ")",
			func(a, b int32) int32 { return x.eval(a, b) ^ y.eval(a, b) }}
	case 8:
		sh := r.Intn(31)
		return refExpr{"(" + x.src + fmt.Sprintf(" << %d)", sh),
			func(a, b int32) int32 { return int32(uint32(x.eval(a, b)) << sh) }}
	case 9:
		sh := r.Intn(31)
		return refExpr{"(" + x.src + fmt.Sprintf(" >> %d)", sh),
			func(a, b int32) int32 { return x.eval(a, b) >> sh }} // arithmetic
	case 10:
		return refExpr{"(" + x.src + " < " + y.src + ")",
			func(a, b int32) int32 { return b2i(x.eval(a, b) < y.eval(a, b)) }}
	case 11:
		return refExpr{"(" + x.src + " == " + y.src + ")",
			func(a, b int32) int32 { return b2i(x.eval(a, b) == y.eval(a, b)) }}
	default:
		return refExpr{"(-" + x.src + ")",
			func(a, b int32) int32 { return -x.eval(a, b) }}
	}
}

func b2i(v bool) int32 {
	if v {
		return 1
	}
	return 0
}

// checkRefExpr compiles one reference expression for the 32-bit targets
// and compares the machine result with Go's int32 arithmetic. a and b
// are the two input bytes the program reads.
func checkRefExpr(t *testing.T, e refExpr, a, b int32) {
	t.Helper()
	src := fmt.Sprintf(`
void main() {
	int a, b, v;
	a = input();
	b = input();
	v = %s;
	output(v & 255);
	output((v >> 8) & 255);
	output((v >> 16) & 255);
	output((v >> 24) & 255);
	exit();
}
`, e.src)
	want := uint32(e.eval(a, b))
	wantBytes := []byte{byte(want), byte(want >> 8), byte(want >> 16), byte(want >> 24)}

	for _, target := range []string{"tiny32", "rv32i"} {
		asmText, err := minic.CompileSource("fuzz.c", src, target)
		if err != nil {
			t.Fatalf("%s: %v\nexpr: %s", target, err, e.src)
		}
		pr, err := asm.New(arch.MustLoad(target)).Assemble("fuzz.s", asmText)
		if err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		m := conc.NewMachine(arch.MustLoad(target))
		m.LoadProgram(pr)
		m.Input = []byte{byte(a), byte(b)}
		stop := m.Run(1_000_000)
		if stop.Kind != conc.StopExit {
			t.Fatalf("%s: %v\nexpr: %s", target, stop, e.src)
		}
		if string(m.Output) != string(wantBytes) {
			t.Fatalf("%s: a=%d b=%d expr %s\n got % x\nwant % x",
				target, a, b, e.src, m.Output, wantBytes)
		}
	}
}

// TestExpressionFuzzAgainstGo compiles random expressions for the 32-bit
// targets and compares the machine result with Go's int32 arithmetic.
func TestExpressionFuzzAgainstGo(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	iters := 40
	if testing.Short() {
		iters = 8
	}
	for iter := 0; iter < iters; iter++ {
		e := genRefExpr(r, 4)
		checkRefExpr(t, e, int32(r.Intn(256)), int32(r.Intn(256)))
	}
}

// FuzzExprCompile is the coverage-guided version: the fuzzer steers the
// generator seed and the two input bytes through the same
// compile-assemble-execute-compare oracle.
func FuzzExprCompile(f *testing.F) {
	f.Add(int64(77), byte(3), byte(200))
	f.Add(int64(1), byte(0), byte(0))
	f.Add(int64(2026), byte(255), byte(128))
	f.Add(int64(-4242), byte(17), byte(17))
	f.Fuzz(func(t *testing.T, seed int64, a, b byte) {
		r := rand.New(rand.NewSource(seed))
		e := genRefExpr(r, 4)
		checkRefExpr(t, e, int32(a), int32(b))
	})
}

package minic

import "fmt"

func targetFor(name string) (target, error) {
	switch name {
	case "tiny32":
		return tiny32Target{}, nil
	case "rv32i":
		return rv32iTarget{}, nil
	case "m16":
		return m16Target{}, nil
	}
	return nil, fmt.Errorf("minic: no code generator for architecture %q", name)
}

// Targets lists the architectures the compiler can emit code for.
func Targets() []string { return []string{"tiny32", "rv32i", "m16"} }

// ---- tiny32 ------------------------------------------------------------
//
// Frame (word = 4 bytes, fp = r13): [locals...][saved fp][saved lr][args...]
// with fp pointing at the saved fp. Scratch r2/r3/r4; result register r1.

type tiny32Target struct{}

func (tiny32Target) name() string   { return "tiny32" }
func (tiny32Target) wordBytes() int { return 4 }

func (tiny32Target) start(g *gen) {
	g.line("_start:")
	g.line("\tlih sp, 4            // sp = 0x40000")
	g.line("\tjal mc_main")
	g.line("\ttrap 0")
}

func (tiny32Target) prologue(g *gen, f *Func) {
	g.line("\taddi sp, sp, -8")
	g.line("\tsw lr, 4(sp)")
	g.line("\tsw fp, 0(sp)")
	g.line("\tmov fp, sp")
	if n := len(f.Locals); n > 0 {
		g.line("\taddi sp, sp, %d", -4*n)
	}
}

func (tiny32Target) epilogue(g *gen, f *Func) {
	g.line("%s:", retLabel(f))
	g.line("\tmov sp, fp")
	g.line("\tlw fp, 0(sp)")
	g.line("\tlw lr, 4(sp)")
	g.line("\taddi sp, sp, 8")
	g.line("\tjr lr")
}

func (t tiny32Target) push(g *gen, reg string) {
	g.line("\taddi sp, sp, -4")
	g.line("\tsw %s, 0(sp)", reg)
}

func (t tiny32Target) pop(g *gen, reg string) {
	g.line("\tlw %s, 0(sp)", reg)
	g.line("\taddi sp, sp, 4")
}

func (t tiny32Target) loadConst(g *gen, reg string, v int64) {
	u := uint32(v)
	if v >= -(1<<15) && v < 1<<15 {
		g.line("\tli %s, %d", reg, v)
		return
	}
	g.line("\tlih %s, %d", reg, u>>16)
	if lo := u & 0xffff; lo != 0 {
		g.line("\tori %s, %s, %d", reg, reg, lo)
	}
}

func (t tiny32Target) pushConst(g *gen, v int64) {
	t.loadConst(g, "r2", v)
	t.push(g, "r2")
}

func (t tiny32Target) slotAddr(s varSlot) string {
	if s.off >= 0 {
		return fmt.Sprintf("%d(fp)", 8+4*s.off)
	}
	return fmt.Sprintf("%d(fp)", 4*s.off)
}

func (t tiny32Target) pushVar(g *gen, s varSlot) {
	if s.global != "" {
		g.line("\tlw r2, %s(r0)", s.global)
	} else {
		g.line("\tlw r2, %s", t.slotAddr(s))
	}
	t.push(g, "r2")
}

func (t tiny32Target) storeVar(g *gen, s varSlot) {
	t.pop(g, "r2")
	if s.global != "" {
		g.line("\tsw r2, %s(r0)", s.global)
	} else {
		g.line("\tsw r2, %s", t.slotAddr(s))
	}
}

func (t tiny32Target) pushElem(g *gen, label string) {
	t.pop(g, "r2")
	g.line("\tslli r2, r2, 2")
	g.line("\tli r3, %s", label)
	g.line("\tadd r2, r2, r3")
	g.line("\tlw r2, 0(r2)")
	t.push(g, "r2")
}

func (t tiny32Target) storeElem(g *gen, label string) {
	t.pop(g, "r4") // value
	t.pop(g, "r2") // index
	g.line("\tslli r2, r2, 2")
	g.line("\tli r3, %s", label)
	g.line("\tadd r2, r2, r3")
	g.line("\tsw r4, 0(r2)")
}

func (t tiny32Target) binary(g *gen, op string) {
	t.pop(g, "r3")
	t.pop(g, "r2")
	switch op {
	case "+":
		g.line("\tadd r2, r2, r3")
	case "-":
		g.line("\tsub r2, r2, r3")
	case "*":
		g.line("\tmul r2, r2, r3")
	case "/":
		g.line("\tdivs r2, r2, r3")
	case "%":
		g.line("\trems r2, r2, r3")
	case "&":
		g.line("\tand r2, r2, r3")
	case "|":
		g.line("\tor r2, r2, r3")
	case "^":
		g.line("\txor r2, r2, r3")
	case "<<":
		g.line("\tsll r2, r2, r3")
	case ">>":
		g.line("\tsra r2, r2, r3")
	case "<":
		g.line("\tslts r2, r2, r3")
	case ">":
		g.line("\tslts r2, r3, r2")
	case "<=":
		g.line("\tslts r2, r3, r2")
		g.line("\txori r2, r2, 1")
	case ">=":
		g.line("\tslts r2, r2, r3")
		g.line("\txori r2, r2, 1")
	case "==":
		g.line("\tsub r2, r2, r3")
		g.line("\tsltiu r2, r2, 1")
	case "!=":
		g.line("\tsub r2, r2, r3")
		g.line("\tsltu r2, r0, r2")
	default:
		panic("tiny32: op " + op)
	}
	t.push(g, "r2")
}

func (t tiny32Target) unary(g *gen, op string) {
	t.pop(g, "r2")
	switch op {
	case "-":
		g.line("\tsub r2, r0, r2")
	case "!":
		g.line("\tsltiu r2, r2, 1")
	default:
		panic("tiny32: unary " + op)
	}
	t.push(g, "r2")
}

func (t tiny32Target) drop(g *gen) { g.line("\taddi sp, sp, 4") }

func (tiny32Target) jump(g *gen, label string) { g.line("\tjmp %s", label) }

func (t tiny32Target) jumpIfZero(g *gen, label string) {
	t.pop(g, "r2")
	g.line("\tbeq r2, r0, %s", label)
}

func (t tiny32Target) call(g *gen, fn string, nargs int, wantValue bool) {
	g.line("\tjal %s", fn)
	if nargs > 0 {
		g.line("\taddi sp, sp, %d", 4*nargs)
	}
	if wantValue {
		t.push(g, "r1")
	}
}

func (t tiny32Target) ret(g *gen, f *Func, hasValue bool) {
	if hasValue {
		t.pop(g, "r1")
	}
	g.line("\tjmp %s", retLabel(f))
}

func (t tiny32Target) input(g *gen) {
	g.line("\ttrap 1")
	t.push(g, "r1")
}

func (t tiny32Target) output(g *gen) {
	t.pop(g, "r1")
	g.line("\ttrap 2")
}

func (tiny32Target) exit(g *gen) { g.line("\ttrap 0") }

func (t tiny32Target) global(g *gen, gl *Global) {
	emitGlobal(g, gl, 4)
}

// emitGlobal writes the data definition shared by the word-addressed
// backends.
func emitGlobal(g *gen, gl *Global, w int) {
	g.line("%s:", globalLabel(gl.Name))
	if len(gl.Init) > 0 {
		for _, v := range gl.Init {
			g.line("\t.word %d", v)
		}
	}
	if rest := gl.Size - len(gl.Init); rest > 0 {
		g.line("\t.space %d", rest*w)
	}
}

// ---- rv32i --------------------------------------------------------------
//
// Frame (word = 4, fp = s0): [locals...][saved s0][saved ra][args...].
// Scratch t0/t1/t2; result register a0.

type rv32iTarget struct{}

func (rv32iTarget) name() string   { return "rv32i" }
func (rv32iTarget) wordBytes() int { return 4 }

func (rv32iTarget) start(g *gen) {
	g.line("_start:")
	g.line("\tlui sp, 0x40          # sp = 0x40000")
	g.line("\tjal ra, mc_main")
	g.line("\taddi a7, zero, 0")
	g.line("\tecall")
}

func (rv32iTarget) prologue(g *gen, f *Func) {
	g.line("\taddi sp, sp, -8")
	g.line("\tsw ra, 4(sp)")
	g.line("\tsw s0, 0(sp)")
	g.line("\taddi s0, sp, 0")
	if n := len(f.Locals); n > 0 {
		g.line("\taddi sp, sp, %d", -4*n)
	}
}

func (rv32iTarget) epilogue(g *gen, f *Func) {
	g.line("%s:", retLabel(f))
	g.line("\taddi sp, s0, 0")
	g.line("\tlw s0, 0(sp)")
	g.line("\tlw ra, 4(sp)")
	g.line("\taddi sp, sp, 8")
	g.line("\tjalr zero, 0(ra)")
}

func (t rv32iTarget) push(g *gen, reg string) {
	g.line("\taddi sp, sp, -4")
	g.line("\tsw %s, 0(sp)", reg)
}

func (t rv32iTarget) pop(g *gen, reg string) {
	g.line("\tlw %s, 0(sp)", reg)
	g.line("\taddi sp, sp, 4")
}

func (t rv32iTarget) loadConst(g *gen, reg string, v int64) {
	if v >= -2048 && v < 2048 {
		g.line("\taddi %s, zero, %d", reg, v)
		return
	}
	u := uint32(v)
	g.line("\tlui %s, hi20(%d)", reg, u)
	g.line("\taddi %s, %s, lo12(%d)", reg, reg, u)
}

func (t rv32iTarget) pushConst(g *gen, v int64) {
	t.loadConst(g, "t0", v)
	t.push(g, "t0")
}

func (t rv32iTarget) slotAddr(s varSlot) string {
	if s.off >= 0 {
		return fmt.Sprintf("%d(s0)", 8+4*s.off)
	}
	return fmt.Sprintf("%d(s0)", 4*s.off)
}

func (t rv32iTarget) globalAddr(g *gen, reg, label string) {
	g.line("\tlui %s, hi20(%s)", reg, label)
	g.line("\taddi %s, %s, lo12(%s)", reg, reg, label)
}

func (t rv32iTarget) pushVar(g *gen, s varSlot) {
	if s.global != "" {
		t.globalAddr(g, "t1", s.global)
		g.line("\tlw t0, 0(t1)")
	} else {
		g.line("\tlw t0, %s", t.slotAddr(s))
	}
	t.push(g, "t0")
}

func (t rv32iTarget) storeVar(g *gen, s varSlot) {
	t.pop(g, "t0")
	if s.global != "" {
		t.globalAddr(g, "t1", s.global)
		g.line("\tsw t0, 0(t1)")
	} else {
		g.line("\tsw t0, %s", t.slotAddr(s))
	}
}

func (t rv32iTarget) pushElem(g *gen, label string) {
	t.pop(g, "t0")
	g.line("\tslli t0, t0, 2")
	t.globalAddr(g, "t1", label)
	g.line("\tadd t0, t0, t1")
	g.line("\tlw t0, 0(t0)")
	t.push(g, "t0")
}

func (t rv32iTarget) storeElem(g *gen, label string) {
	t.pop(g, "t2") // value
	t.pop(g, "t0") // index
	g.line("\tslli t0, t0, 2")
	t.globalAddr(g, "t1", label)
	g.line("\tadd t0, t0, t1")
	g.line("\tsw t2, 0(t0)")
}

func (t rv32iTarget) binary(g *gen, op string) {
	t.pop(g, "t1")
	t.pop(g, "t0")
	switch op {
	case "+":
		g.line("\tadd t0, t0, t1")
	case "-":
		g.line("\tsub t0, t0, t1")
	case "*":
		g.line("\tmul t0, t0, t1")
	case "/":
		g.line("\tdiv t0, t0, t1")
	case "%":
		g.line("\trem t0, t0, t1")
	case "&":
		g.line("\tand t0, t0, t1")
	case "|":
		g.line("\tor t0, t0, t1")
	case "^":
		g.line("\txor t0, t0, t1")
	case "<<":
		g.line("\tsll t0, t0, t1")
	case ">>":
		g.line("\tsra t0, t0, t1")
	case "<":
		g.line("\tslt t0, t0, t1")
	case ">":
		g.line("\tslt t0, t1, t0")
	case "<=":
		g.line("\tslt t0, t1, t0")
		g.line("\txori t0, t0, 1")
	case ">=":
		g.line("\tslt t0, t0, t1")
		g.line("\txori t0, t0, 1")
	case "==":
		g.line("\tsub t0, t0, t1")
		g.line("\tsltiu t0, t0, 1")
	case "!=":
		g.line("\tsub t0, t0, t1")
		g.line("\tsltu t0, zero, t0")
	default:
		panic("rv32i: op " + op)
	}
	t.push(g, "t0")
}

func (t rv32iTarget) unary(g *gen, op string) {
	t.pop(g, "t0")
	switch op {
	case "-":
		g.line("\tsub t0, zero, t0")
	case "!":
		g.line("\tsltiu t0, t0, 1")
	default:
		panic("rv32i: unary " + op)
	}
	t.push(g, "t0")
}

func (t rv32iTarget) drop(g *gen) { g.line("\taddi sp, sp, 4") }

func (rv32iTarget) jump(g *gen, label string) { g.line("\tjal zero, %s", label) }

func (t rv32iTarget) jumpIfZero(g *gen, label string) {
	t.pop(g, "t0")
	g.line("\tbeq t0, zero, %s", label)
}

func (t rv32iTarget) call(g *gen, fn string, nargs int, wantValue bool) {
	g.line("\tjal ra, %s", fn)
	if nargs > 0 {
		g.line("\taddi sp, sp, %d", 4*nargs)
	}
	if wantValue {
		t.push(g, "a0")
	}
}

func (t rv32iTarget) ret(g *gen, f *Func, hasValue bool) {
	if hasValue {
		t.pop(g, "a0")
	}
	g.line("\tjal zero, %s", retLabel(f))
}

func (t rv32iTarget) input(g *gen) {
	g.line("\taddi a7, zero, 1")
	g.line("\tecall")
	t.push(g, "a0")
}

func (t rv32iTarget) output(g *gen) {
	t.pop(g, "a0")
	g.line("\taddi a7, zero, 2")
	g.line("\tecall")
}

func (rv32iTarget) exit(g *gen) {
	g.line("\taddi a7, zero, 0")
	g.line("\tecall")
}

func (t rv32iTarget) global(g *gen, gl *Global) { emitGlobal(g, gl, 4) }

// ---- m16 ----------------------------------------------------------------
//
// Frame (word = 2, fp = g5): [locals...][saved fp][ret addr][args...] —
// the call instruction itself pushes the return address. Scratch
// g2/g3/g4; result register g1. MiniC caveats on this target: `/` and
// `>>` are unsigned (the ISA has no signed divide or arithmetic shift).

type m16Target struct{}

func (m16Target) name() string   { return "m16" }
func (m16Target) wordBytes() int { return 2 }

func (m16Target) start(g *gen) {
	g.line("_start:")
	g.line("\tldi sp, 0x7ff0")
	g.line("\tcall mc_main")
	g.line("\ttrap 0")
}

func (m16Target) prologue(g *gen, f *Func) {
	g.line("\tpush g5")
	g.line("\tmov g5, sp")
	if n := len(f.Locals); n > 0 {
		g.line("\taddi sp, %d", -2*n)
	}
}

func (m16Target) epilogue(g *gen, f *Func) {
	g.line("%s:", retLabel(f))
	g.line("\tmov sp, g5")
	g.line("\tpop g5")
	g.line("\tret")
}

func (t m16Target) pushConst(g *gen, v int64) {
	g.line("\tldi g2, %d", int16(v))
	g.line("\tpush g2")
}

func (t m16Target) slotOff(s varSlot) int {
	if s.off >= 0 {
		return 4 + 2*s.off
	}
	return 2 * s.off
}

func (t m16Target) pushVar(g *gen, s varSlot) {
	if s.global != "" {
		g.line("\tld g2, %s", s.global)
	} else {
		g.line("\tldx g2, %d(g5)", t.slotOff(s))
	}
	g.line("\tpush g2")
}

func (t m16Target) storeVar(g *gen, s varSlot) {
	g.line("\tpop g2")
	if s.global != "" {
		g.line("\tst g2, %s", s.global)
	} else {
		g.line("\tstx g2, %d(g5)", t.slotOff(s))
	}
}

func (t m16Target) pushElem(g *gen, label string) {
	g.line("\tpop g2")
	g.line("\tldi g3, 1")
	g.line("\tshl g2, g3")
	g.line("\tldx g2, %s(g2)", label)
	g.line("\tpush g2")
}

func (t m16Target) storeElem(g *gen, label string) {
	g.line("\tpop g3") // value
	g.line("\tpop g2") // index
	g.line("\tldi g4, 1")
	g.line("\tshl g2, g4")
	g.line("\tstx g3, %s(g2)", label)
}

func (t m16Target) binary(g *gen, op string) {
	g.line("\tpop g3")
	g.line("\tpop g2")
	switch op {
	case "+":
		g.line("\tadd g2, g3")
	case "-":
		g.line("\tsub g2, g3")
	case "*":
		g.line("\tmul g2, g3")
	case "/":
		g.line("\tdiv g2, g3")
	case "%":
		// x - (x/y)*y with the unsigned divider.
		g.line("\tmov g4, g2")
		g.line("\tdiv g4, g3")
		g.line("\tmul g4, g3")
		g.line("\tsub g2, g4")
	case "&":
		g.line("\tand g2, g3")
	case "|":
		g.line("\tor g2, g3")
	case "^":
		g.line("\txor g2, g3")
	case "<<":
		g.line("\tshl g2, g3")
	case ">>":
		g.line("\tshr g2, g3")
	case "<", ">", "<=", ">=", "==", "!=":
		t.compare(g, op)
	default:
		panic("m16: op " + op)
	}
	g.line("\tpush g2")
}

// compare materializes a flag-based comparison of g2 OP g3 into g2.
func (t m16Target) compare(g *gen, op string) {
	tl := g.label("ct")
	el := g.label("ce")
	var cmp, br string
	switch op {
	case "<":
		cmp, br = "cmp g2, g3", "blt"
	case ">":
		cmp, br = "cmp g3, g2", "blt"
	case "<=":
		cmp, br = "cmp g3, g2", "bge"
	case ">=":
		cmp, br = "cmp g2, g3", "bge"
	case "==":
		cmp, br = "cmp g2, g3", "beq"
	case "!=":
		cmp, br = "cmp g2, g3", "bne"
	}
	g.line("\t%s", cmp)
	g.line("\t%s %s", br, tl)
	g.line("\tldi g2, 0")
	g.line("\tbra %s", el)
	g.line("%s:", tl)
	g.line("\tldi g2, 1")
	g.line("%s:", el)
}

func (t m16Target) unary(g *gen, op string) {
	g.line("\tpop g2")
	switch op {
	case "-":
		g.line("\tneg g2")
	case "!":
		tl := g.label("nt")
		el := g.label("ne")
		g.line("\tcmpi g2, 0")
		g.line("\tbeq %s", tl)
		g.line("\tldi g2, 0")
		g.line("\tbra %s", el)
		g.line("%s:", tl)
		g.line("\tldi g2, 1")
		g.line("%s:", el)
	default:
		panic("m16: unary " + op)
	}
	g.line("\tpush g2")
}

func (t m16Target) drop(g *gen) { g.line("\taddi sp, 2") }

func (m16Target) jump(g *gen, label string) { g.line("\tjmp %s", label) }

func (t m16Target) jumpIfZero(g *gen, label string) {
	// Short branches reach only ±127 bytes; invert around an absolute
	// jump so any target works.
	skip := g.label("jz")
	g.line("\tpop g2")
	g.line("\tcmpi g2, 0")
	g.line("\tbne %s", skip)
	g.line("\tjmp %s", label)
	g.line("%s:", skip)
}

func (t m16Target) call(g *gen, fn string, nargs int, wantValue bool) {
	g.line("\tcall %s", fn)
	if nargs > 0 {
		g.line("\taddi sp, %d", 2*nargs)
	}
	if wantValue {
		g.line("\tpush g1")
	}
}

func (t m16Target) ret(g *gen, f *Func, hasValue bool) {
	if hasValue {
		g.line("\tpop g1")
	}
	g.line("\tjmp %s", retLabel(f))
}

func (t m16Target) input(g *gen) {
	g.line("\ttrap 1")
	g.line("\tpush g1")
}

func (t m16Target) output(g *gen) {
	g.line("\tpop g1")
	g.line("\ttrap 2")
}

func (m16Target) exit(g *gen) { g.line("\ttrap 0") }

func (t m16Target) global(g *gen, gl *Global) { emitGlobal(g, gl, 2) }

package asm_test

import (
	"bytes"
	"testing"

	"repro/arch"
	"repro/internal/conc"
)

func TestPseudoExpansion(t *testing.T) {
	p := assemble(t, "tiny32", `
_start:
	nop
	li  r1, 5
	inc r1
	inc r1
	dec r1
	push r1
	clr r1
	pop r1
	mov sysarg, r1
	trap 2
	trap 0
`)
	m := conc.NewMachine(arch.MustLoad("tiny32"))
	m.LoadProgram(p)
	// sp must be set for push/pop.
	m.WriteReg(m.Arch.Reg("sp"), 0x8000)
	m.WriteReg(m.Arch.Reg("pc"), p.Entry)
	stop := m.Run(100)
	if stop.Kind != conc.StopExit {
		t.Fatalf("stop %v", stop)
	}
	if !bytes.Equal(m.Output, []byte{6}) {
		t.Fatalf("output %v, want [6]", m.Output)
	}
	// push expands to 2 instructions: image is larger than the source
	// line count alone.
	if p.Size() != 13*4 {
		t.Errorf("size = %d, want 13 instructions (two 2-insn pseudos)", p.Size())
	}
}

func TestRV32IStandardPseudos(t *testing.T) {
	p := assemble(t, "rv32i", `
_start:
	li   a0, 7
	mv   a1, a0
	neg  a2, a1
	not  a3, a2
	seqz a4, a3
	bnez a1, go
	nop
go:
	call f
	j done
f:	inc_is_not_a_pseudo_here:
	ret
done:
	mv   a0, a3
	li   a7, 2
	ecall
	li   a7, 0
	ecall
`)
	m := conc.NewMachine(arch.MustLoad("rv32i"))
	m.LoadProgram(p)
	m.WriteReg(m.Arch.Reg("sp"), 0x8000)
	m.WriteReg(m.Arch.Reg("pc"), p.Entry)
	stop := m.Run(100)
	if stop.Kind != conc.StopExit {
		t.Fatalf("stop %v", stop)
	}
	// a2 = -7, a3 = ~(-7) = 6 -> output 6.
	if !bytes.Equal(m.Output, []byte{6}) {
		t.Fatalf("output %v, want [6]", m.Output)
	}
}

func TestPseudoSwappedOperands(t *testing.T) {
	// bgt a, b == blt b, a: taken iff a > b.
	p := assemble(t, "tiny32", `
_start:
	li r1, 9
	li r2, 3
	bgt r1, r2, yes
	trap 0
yes:
	mov sysarg, r1
	trap 2
	trap 0
`)
	m := conc.NewMachine(arch.MustLoad("tiny32"))
	m.LoadProgram(p)
	stop := m.Run(100)
	if stop.Kind != conc.StopExit || len(m.Output) != 1 {
		t.Fatalf("stop %v output %v", stop, m.Output)
	}
}

// Package asm implements the retargetable two-pass assembler. All
// architecture knowledge — mnemonics, operand shapes, encodings — comes
// from the ADL model: an instruction assembles by matching the token
// shape of its ADL assembly template and encoding operand values through
// the model's field mappings.
//
// Beyond instructions, the assembler supports labels, `.org`, `.word`,
// `.half`, `.byte`, `.space`, `.ascii`, `.asciz`, `.equ`, and `.entry`
// directives, and the address-split helper functions hi16/lo16 (upper and
// lower half-words) and hi20/lo12 (RISC-V-style %hi/%lo with rounding).
package asm

import (
	"fmt"
	"strings"

	"repro/internal/adl"
	"repro/internal/bv"
	"repro/internal/cover"
	"repro/internal/prog"
)

// Assembler assembles source text for one architecture.
type Assembler struct {
	arch *adl.Arch
	cov  *cover.ArchCov
}

// New returns an assembler for the architecture.
func New(a *adl.Arch) *Assembler { return &Assembler{arch: a} }

// SetCover attaches a coverage binding; every successfully encoded
// instruction is then recorded in the asm layer. Nil detaches.
func (a *Assembler) SetCover(v *cover.ArchCov) { a.cov = v }

// Error is a source-located assembler error.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// immRef is an unresolved immediate: an optional symbol plus a constant,
// optionally passed through an address-split function.
type immRef struct {
	sym string // "" for plain constants
	off int64
	fn  string // "", "hi16", "lo16", "hi20", "lo12"
}

// operandVal is a parsed operand before symbol resolution.
type operandVal struct {
	reg *adl.Reg // register operands
	imm immRef   // immediate operands
}

// item is one assembled unit recorded by pass 1.
type item struct {
	addr uint64
	line int

	ins *adl.Insn             // instruction items
	ops map[string]operandVal // instruction operand values

	data []byte   // raw data items (already final)
	refs []immRef // .word/.half refs resolved in pass 2
	refW uint     // byte width of each ref
}

// Assemble assembles src (file is used in error messages only).
func (as *Assembler) Assemble(file, src string) (*prog.Program, error) {
	a := &asmRun{
		as:   as,
		file: file,
		syms: map[string]uint64{},
	}
	if err := a.pass1(src); err != nil {
		return nil, err
	}
	return a.pass2()
}

type asmRun struct {
	as    *Assembler
	file  string
	syms  map[string]uint64
	items []item
	addr  uint64
	entry immRef
	line  int
}

func (a *asmRun) errf(format string, args ...any) error {
	return &Error{File: a.file, Line: a.line, Msg: fmt.Sprintf(format, args...)}
}

func (a *asmRun) pass1(src string) error {
	for i, ln := range strings.Split(src, "\n") {
		a.line = i + 1
		if err := a.doLine(ln); err != nil {
			return err
		}
	}
	return nil
}

func (a *asmRun) doLine(ln string) error {
	toks, err := tokenize(ln)
	if err != nil {
		return a.errf("%s", err)
	}
	// Leading labels.
	for len(toks) >= 2 && toks[0].kind == tkIdent && toks[1].kind == tkPunct && toks[1].text == ":" {
		name := toks[0].text
		if _, dup := a.syms[name]; dup {
			return a.errf("symbol %s redefined", name)
		}
		a.syms[name] = a.addr
		toks = toks[2:]
	}
	if len(toks) == 0 {
		return nil
	}
	if toks[0].kind == tkIdent && strings.HasPrefix(toks[0].text, ".") {
		return a.directive(toks)
	}
	return a.instruction(toks)
}

func (a *asmRun) directive(toks []tok) error {
	name := toks[0].text
	args := toks[1:]
	switch name {
	case ".org":
		v, rest, err := a.parseImm(args)
		if err != nil || len(rest) != 0 {
			return a.errf(".org needs one constant address")
		}
		if v.sym != "" {
			return a.errf(".org address must be a constant")
		}
		a.addr = uint64(v.off)
		return nil
	case ".entry":
		v, rest, err := a.parseImm(args)
		if err != nil || len(rest) != 0 {
			return a.errf(".entry needs a symbol or address")
		}
		a.entry = v
		return nil
	case ".equ":
		if len(args) < 3 || args[0].kind != tkIdent || args[1].text != "," {
			return a.errf(".equ needs: .equ name, value")
		}
		v, rest, err := a.parseImm(args[2:])
		if err != nil || len(rest) != 0 || v.sym != "" {
			return a.errf(".equ value must be a constant")
		}
		if _, dup := a.syms[args[0].text]; dup {
			return a.errf("symbol %s redefined", args[0].text)
		}
		a.syms[args[0].text] = uint64(v.off)
		return nil
	case ".space":
		v, rest, err := a.parseImm(args)
		if err != nil || len(rest) != 0 || v.sym != "" || v.off < 0 {
			return a.errf(".space needs a non-negative constant")
		}
		a.items = append(a.items, item{addr: a.addr, line: a.line, data: make([]byte, v.off)})
		a.addr += uint64(v.off)
		return nil
	case ".ascii", ".asciz":
		if len(args) != 1 || args[0].kind != tkString {
			return a.errf("%s needs one string literal", name)
		}
		data := []byte(args[0].text)
		if name == ".asciz" {
			data = append(data, 0)
		}
		a.items = append(a.items, item{addr: a.addr, line: a.line, data: data})
		a.addr += uint64(len(data))
		return nil
	case ".byte", ".half", ".word":
		width := map[string]uint{".byte": 1, ".half": 2, ".word": 4}[name]
		if name == ".word" {
			width = a.as.arch.Bits / 8
		}
		var refs []immRef
		rest := args
		for {
			var v immRef
			var err error
			v, rest, err = a.parseImm(rest)
			if err != nil {
				return err
			}
			refs = append(refs, v)
			if len(rest) == 0 {
				break
			}
			if rest[0].text != "," {
				return a.errf("expected , between %s values", name)
			}
			rest = rest[1:]
		}
		a.items = append(a.items, item{addr: a.addr, line: a.line, refs: refs, refW: width})
		a.addr += uint64(len(refs)) * uint64(width)
		return nil
	}
	return a.errf("unknown directive %s", name)
}

func (a *asmRun) instruction(toks []tok) error {
	return a.instructionDepth(toks, 0)
}

func (a *asmRun) instructionDepth(toks []tok, depth int) error {
	if toks[0].kind != tkIdent {
		return a.errf("expected a mnemonic")
	}
	mnemonic := toks[0].text
	candidates := a.as.arch.InsnsByMnemonic(mnemonic)
	pseudos := a.as.arch.PseudosByMnemonic(mnemonic)
	if len(candidates) == 0 && len(pseudos) == 0 {
		return a.errf("unknown mnemonic %q", mnemonic)
	}
	var firstErr error
	for _, ins := range candidates {
		ops, err := a.matchTemplate(ins, toks[1:])
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		a.items = append(a.items, item{addr: a.addr, line: a.line, ins: ins, ops: ops})
		a.addr += uint64(ins.Format.Bytes())
		return nil
	}
	// No real encoding matched: try pseudo instructions.
	if depth >= 4 {
		return a.errf("pseudo expansion of %q too deep", mnemonic)
	}
	for _, ps := range pseudos {
		params, ok := a.matchPseudo(ps, toks[1:])
		if !ok {
			continue
		}
		for _, line := range strings.Split(expandPseudo(ps.Expansion, params), ";") {
			sub, err := tokenize(line)
			if err != nil {
				return a.errf("pseudo %s: %s", mnemonic, err)
			}
			if len(sub) == 0 {
				continue
			}
			if err := a.instructionDepth(sub, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return firstErr
}

// matchPseudo matches a pseudo template, capturing the raw text of each
// parameter. Parameters capture greedily up to the next literal token of
// the template (or the end of the line).
func (a *asmRun) matchPseudo(ps *adl.Pseudo, toks []tok) (map[string]string, bool) {
	params := map[string]string{}
	rest := toks
	for ti, pt := range ps.Toks {
		if pt.Lit != "" {
			for _, ch := range pt.Lit {
				if len(rest) == 0 || rest[0].kind != tkPunct || rest[0].text != string(ch) {
					return nil, false
				}
				rest = rest[1:]
			}
			continue
		}
		// Find the delimiter: the first character of the next literal.
		var delim string
		for _, nt := range ps.Toks[ti+1:] {
			if nt.Lit != "" {
				delim = nt.Lit[:1]
				break
			}
		}
		var captured []string
		for len(rest) > 0 {
			if delim != "" && rest[0].kind == tkPunct && rest[0].text == delim {
				break
			}
			captured = append(captured, rest[0].text)
			rest = rest[1:]
		}
		if len(captured) == 0 {
			return nil, false
		}
		params[pt.Param] = strings.Join(captured, " ")
	}
	if len(rest) != 0 {
		return nil, false
	}
	return params, true
}

// expandPseudo substitutes %name parameter references in the expansion.
func expandPseudo(expansion string, params map[string]string) string {
	var sb strings.Builder
	for i := 0; i < len(expansion); i++ {
		if expansion[i] != '%' {
			sb.WriteByte(expansion[i])
			continue
		}
		j := i + 1
		for j < len(expansion) && isWordPart(expansion[j]) {
			j++
		}
		sb.WriteString(params[expansion[i+1:j]])
		i = j - 1
	}
	return sb.String()
}

// matchTemplate parses the operand tokens of one candidate instruction.
func (a *asmRun) matchTemplate(ins *adl.Insn, toks []tok) (map[string]operandVal, error) {
	ops := make(map[string]operandVal)
	rest := toks
	for _, at := range ins.AsmToks {
		if at.Operand == nil {
			// Literal: match it character by character against punctuation
			// tokens (a literal like "(" is a single token; "," likewise).
			for _, ch := range at.Lit {
				if len(rest) == 0 || rest[0].kind != tkPunct || rest[0].text != string(ch) {
					return nil, a.errf("%s: expected %q", ins.Mnemonic, at.Lit)
				}
				rest = rest[1:]
			}
			continue
		}
		op := at.Operand
		if op.Kind == adl.FReg {
			if len(rest) == 0 || rest[0].kind != tkIdent {
				return nil, a.errf("%s: expected a register for %%%s", ins.Mnemonic, op.Name)
			}
			r := a.as.arch.Reg(rest[0].text)
			if r == nil || r.File != op.File {
				return nil, a.errf("%s: %q is not a register of file %s", ins.Mnemonic, rest[0].text, op.File.Name)
			}
			ops[op.Name] = operandVal{reg: r}
			rest = rest[1:]
			continue
		}
		v, rem, err := a.parseImm(rest)
		if err != nil {
			return nil, err
		}
		ops[op.Name] = operandVal{imm: v}
		rest = rem
	}
	if len(rest) != 0 {
		return nil, a.errf("%s: trailing input %q", ins.Mnemonic, rest[0].text)
	}
	return ops, nil
}

// parseImm parses sym, number, -number, sym+number, sym-number, or
// fn(sym±number) where fn is an address-split helper.
func (a *asmRun) parseImm(toks []tok) (immRef, []tok, error) {
	var ref immRef
	if len(toks) == 0 {
		return ref, nil, a.errf("expected an immediate")
	}
	// Address-split helper call.
	if toks[0].kind == tkIdent && len(toks) >= 2 && toks[1].text == "(" {
		switch toks[0].text {
		case "hi16", "lo16", "hi20", "lo12":
			inner, rest, err := a.parseImm(toks[2:])
			if err != nil {
				return ref, nil, err
			}
			if len(rest) == 0 || rest[0].text != ")" {
				return ref, nil, a.errf("missing ) after %s(", toks[0].text)
			}
			if inner.fn != "" {
				return ref, nil, a.errf("nested address-split helpers")
			}
			inner.fn = toks[0].text
			return inner, rest[1:], nil
		}
	}
	neg := false
	if toks[0].kind == tkPunct && (toks[0].text == "-" || toks[0].text == "+") {
		neg = toks[0].text == "-"
		toks = toks[1:]
		if len(toks) == 0 {
			return ref, nil, a.errf("dangling sign")
		}
	}
	switch toks[0].kind {
	case tkNumber:
		ref.off = int64(toks[0].num)
	case tkIdent:
		if neg {
			return ref, nil, a.errf("cannot negate a symbol")
		}
		ref.sym = toks[0].text
	default:
		return ref, nil, a.errf("expected a number or symbol, found %q", toks[0].text)
	}
	if neg {
		ref.off = -ref.off
	}
	toks = toks[1:]
	// Optional ±constant tail after a symbol.
	if ref.sym != "" && len(toks) >= 2 && toks[0].kind == tkPunct &&
		(toks[0].text == "+" || toks[0].text == "-") && toks[1].kind == tkNumber {
		off := int64(toks[1].num)
		if toks[0].text == "-" {
			off = -off
		}
		ref.off += off
		toks = toks[2:]
	}
	return ref, toks, nil
}

// resolve computes the final value of an immRef.
func (a *asmRun) resolve(ref immRef, line int) (uint64, error) {
	v := uint64(ref.off)
	if ref.sym != "" {
		sv, ok := a.syms[ref.sym]
		if !ok {
			return 0, &Error{File: a.file, Line: line, Msg: fmt.Sprintf("undefined symbol %q", ref.sym)}
		}
		v = sv + uint64(ref.off)
	}
	switch ref.fn {
	case "hi16":
		v = v >> 16 & 0xffff
	case "lo16":
		v &= 0xffff
	case "hi20":
		v = (v + 0x800) >> 12 & 0xfffff
	case "lo12":
		v = bv.SExt(v&0xfff, 12) // low 12 bits, sign-adjusted for hi20 pairing
	}
	return v, nil
}

func (a *asmRun) pass2() (*prog.Program, error) {
	p := &prog.Program{Arch: a.as.arch.Name, Symbols: a.syms}
	var cur *prog.Segment
	emit := func(addr uint64, data []byte) {
		if cur == nil || cur.Addr+uint64(len(cur.Data)) != addr {
			p.Segments = append(p.Segments, prog.Segment{Addr: addr})
			cur = &p.Segments[len(p.Segments)-1]
		}
		cur.Data = append(cur.Data, data...)
	}
	for _, it := range a.items {
		switch {
		case it.ins != nil:
			data, err := a.encode(it)
			if err != nil {
				return nil, err
			}
			emit(it.addr, data)
		case it.refs != nil:
			buf := make([]byte, 0, len(it.refs)*int(it.refW))
			for _, ref := range it.refs {
				v, err := a.resolve(ref, it.line)
				if err != nil {
					return nil, err
				}
				buf = append(buf, a.bytesOf(v, it.refW)...)
			}
			emit(it.addr, buf)
		default:
			emit(it.addr, it.data)
		}
	}
	// Entry point: .entry if given, else _start, else the first byte.
	switch {
	case a.entry.sym != "" || a.entry.off != 0:
		v, err := a.resolve(a.entry, 0)
		if err != nil {
			return nil, err
		}
		p.Entry = v
	default:
		if v, ok := a.syms["_start"]; ok {
			p.Entry = v
		} else if lo, _, ok := p.Bounds(); ok {
			p.Entry = lo
		}
	}
	return p, nil
}

func (a *asmRun) encode(it item) ([]byte, error) {
	word := it.ins.Match
	for _, op := range it.ins.Operands {
		v, seen := it.ops[op.Name]
		if !seen {
			// Operand never surfaced in the template: encode as zero.
			continue
		}
		var val uint64
		if op.Kind == adl.FReg {
			val = v.reg.Index
		} else {
			rv, err := a.resolve(v.imm, it.line)
			if err != nil {
				return nil, err
			}
			if op.Rel() {
				rv -= it.addr
			}
			val = rv
		}
		w, err := adl.EncodeOperand(op, val, word)
		if err != nil {
			return nil, &Error{File: a.file, Line: it.line, Msg: err.Error()}
		}
		word = w
	}
	a.as.cov.Hit(cover.LAsm, it.ins)
	return a.bytesOf(word, uint(it.ins.Format.Bytes())), nil
}

func (a *asmRun) bytesOf(v uint64, n uint) []byte {
	out := make([]byte, n)
	if a.as.arch.Endian == adl.Little {
		for i := range out {
			out[i] = byte(v >> (8 * uint(i)))
		}
	} else {
		for i := range out {
			out[i] = byte(v >> (8 * (n - 1 - uint(i))))
		}
	}
	return out
}

// ---- line tokenizer ----

type tokKind int

const (
	tkIdent tokKind = iota
	tkNumber
	tkString
	tkPunct
)

type tok struct {
	kind tokKind
	text string
	num  uint64
}

func tokenize(ln string) ([]tok, error) {
	var out []tok
	i := 0
	for i < len(ln) {
		c := ln[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == ';' || c == '#' || (c == '/' && i+1 < len(ln) && ln[i+1] == '/'):
			return out, nil // comment to end of line
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(ln) && ln[j] != '"' {
				if ln[j] == '\\' && j+1 < len(ln) {
					j++
					switch ln[j] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case '0':
						sb.WriteByte(0)
					default:
						sb.WriteByte(ln[j])
					}
				} else {
					sb.WriteByte(ln[j])
				}
				j++
			}
			if j >= len(ln) {
				return nil, fmt.Errorf("unterminated string")
			}
			out = append(out, tok{kind: tkString, text: sb.String()})
			i = j + 1
		case isWordStart(c):
			j := i
			for j < len(ln) && isWordPart(ln[j]) {
				j++
			}
			out = append(out, tok{kind: tkIdent, text: ln[i:j]})
			i = j
		case c >= '0' && c <= '9':
			j := i
			base := 10
			if c == '0' && j+1 < len(ln) && (ln[j+1] == 'x' || ln[j+1] == 'X') {
				base = 16
				j += 2
			} else if c == '0' && j+1 < len(ln) && (ln[j+1] == 'b' || ln[j+1] == 'B') {
				base = 2
				j += 2
			}
			var v uint64
			digits := 0
			for j < len(ln) {
				d := digitVal(ln[j])
				if d < 0 || d >= base {
					break
				}
				v = v*uint64(base) + uint64(d)
				digits++
				j++
			}
			if digits == 0 {
				return nil, fmt.Errorf("malformed number at %q", ln[i:])
			}
			out = append(out, tok{kind: tkNumber, num: v, text: ln[i:j]})
			i = j
		case strings.ContainsRune(",()+-:", rune(c)):
			out = append(out, tok{kind: tkPunct, text: string(c)})
			i++
		default:
			return nil, fmt.Errorf("unexpected character %q", c)
		}
	}
	return out, nil
}

func isWordStart(c byte) bool {
	return c == '_' || c == '.' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isWordPart(c byte) bool {
	return isWordStart(c) && c != '.' || c >= '0' && c <= '9' || c == '.'
}

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

package asm_test

import (
	"strings"
	"testing"

	"repro/arch"
	"repro/internal/asm"
	"repro/internal/prog"
)

func assemble(t *testing.T, archName, src string) *prog.Program {
	t.Helper()
	p, err := asm.New(arch.MustLoad(archName)).Assemble("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func expectErr(t *testing.T, archName, src, want string) {
	t.Helper()
	_, err := asm.New(arch.MustLoad(archName)).Assemble("t.s", src)
	if err == nil {
		t.Fatalf("expected error containing %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}

func TestDirectives(t *testing.T) {
	p := assemble(t, "tiny32", `
	.org 0x100
data:
	.word 0xdeadbeef
	.half 0x1234
	.byte 1, 2, 3
	.space 5
	.asciz "hi"
	.equ answer, 42
	.org 0x200
_start:
	li r1, answer
	halt
	.entry _start
`)
	if p.Entry != 0x200 {
		t.Errorf("entry = %#x", p.Entry)
	}
	img := p.Image()
	// .word little endian at 0x100.
	if img[0x100] != 0xef || img[0x103] != 0xde {
		t.Errorf(".word bytes: %x %x", img[0x100], img[0x103])
	}
	if img[0x104] != 0x34 || img[0x105] != 0x12 {
		t.Error(".half bytes wrong")
	}
	if img[0x106] != 1 || img[0x108] != 3 {
		t.Error(".byte values wrong")
	}
	// .space zero-fills 5 bytes, then "hi\0".
	if img[0x10e] != 'h' || img[0x10f] != 'i' || img[0x110] != 0 {
		t.Errorf(".asciz bytes wrong: % x", []byte{img[0x10e], img[0x10f], img[0x110]})
	}
	if p.Symbols["answer"] != 42 {
		t.Error(".equ symbol missing")
	}
	if p.Symbols["data"] != 0x100 {
		t.Error("label address wrong")
	}
}

func TestBigEndianData(t *testing.T) {
	p := assemble(t, "m16", `
d:	.word 0x1234
	.half 0xabcd
`)
	img := p.Image()
	// m16 words are 16-bit big endian.
	if img[0] != 0x12 || img[1] != 0x34 {
		t.Errorf(".word on big-endian: % x", []byte{img[0], img[1]})
	}
	if img[2] != 0xab || img[3] != 0xcd {
		t.Errorf(".half on big-endian: % x", []byte{img[2], img[3]})
	}
}

func TestSymbolArithmetic(t *testing.T) {
	p := assemble(t, "tiny32", `
base:	.space 16
_start:
	li r1, base+8
	li r2, base - 4
	halt
`)
	img := p.Image()
	// li r1, 8: imm at offset 16 (first insn), little endian low half.
	first := uint32(img[16]) | uint32(img[17])<<8
	if first != 8 {
		t.Errorf("base+8 encoded %d", first)
	}
	second := uint32(img[20]) | uint32(img[21])<<8
	if int16(second) != -4 {
		t.Errorf("base-4 encoded %d", int16(second))
	}
}

func TestVariableLengthM16(t *testing.T) {
	p := assemble(t, "m16", `
_start:
	mov g0, g1     ; 2 bytes
	ldi g2, 1000   ; 4 bytes
	halt           ; 2 bytes
`)
	if p.Size() != 8 {
		t.Errorf("image size = %d, want 8", p.Size())
	}
}

func TestBranchRangeError(t *testing.T) {
	// m16 short branches have an 8-bit signed range.
	var sb strings.Builder
	sb.WriteString("_start:\n\tbra far\n")
	for i := 0; i < 100; i++ {
		sb.WriteString("\tmov g0, g1\n")
	}
	sb.WriteString("far:\thalt\n")
	expectErr(t, "m16", sb.String(), "out of")
}

func TestUndefinedSymbol(t *testing.T) {
	expectErr(t, "tiny32", "_start:\n\tli r1, nowhere\n", "undefined symbol")
}

func TestDuplicateLabel(t *testing.T) {
	expectErr(t, "tiny32", "a:\n\thalt\na:\n\thalt\n", "redefined")
}

func TestUnknownMnemonic(t *testing.T) {
	expectErr(t, "tiny32", "\tfrobnicate r1\n", "unknown mnemonic")
}

func TestWrongOperandShape(t *testing.T) {
	expectErr(t, "tiny32", "\tadd r1, r2\n", "expected")
	expectErr(t, "tiny32", "\tadd r1, r2, 5\n", "register")
	expectErr(t, "tiny32", "\tlw r1, 4 r2\n", "expected")
}

func TestWrongRegisterFile(t *testing.T) {
	expectErr(t, "tiny32", "\tadd r1, r2, pc\n", "not a register of file")
}

func TestImmediateRange(t *testing.T) {
	expectErr(t, "tiny32", "\tli r1, 999999\n", "out of")
	// Signed 16-bit accepts -32768..32767 and unsigned patterns to 0xffff.
	assemble(t, "tiny32", "\tli r1, -32768\n\tli r2, 0xffff\n")
}

func TestAliasesAccepted(t *testing.T) {
	p := assemble(t, "tiny32", `
_start:
	addi sp, sp, -8
	mov  fp, sp
	jr   lr
`)
	if p.Size() != 12 {
		t.Errorf("size %d", p.Size())
	}
}

func TestRegisterOperandZeroEncoded(t *testing.T) {
	// Unreferenced operands in match-constrained insns encode as zero:
	// "halt" pins every field.
	p := assemble(t, "tiny32", "\thalt\n")
	img := p.Image()
	if img[0] != 0 || img[1] != 0 || img[2] != 0 || img[3] != 0 {
		t.Errorf("halt bytes % x", []byte{img[0], img[1], img[2], img[3]})
	}
}

func TestCommentsEverywhere(t *testing.T) {
	assemble(t, "tiny32", `
// full-line comment
; also a comment
# hash comment
_start:	halt ; trailing
	// done
`)
}

func TestEntryDefaultsToStart(t *testing.T) {
	p := assemble(t, "tiny32", `
	.org 0x40
other:	halt
_start:	halt
`)
	if p.Entry != 0x44 {
		t.Errorf("entry = %#x, want _start at 0x44", p.Entry)
	}
}

func TestEntryDefaultsToLowestWithoutStart(t *testing.T) {
	p := assemble(t, "tiny32", `
	.org 0x80
a:	halt
`)
	if p.Entry != 0x80 {
		t.Errorf("entry = %#x", p.Entry)
	}
}

func TestMultipleSegments(t *testing.T) {
	p := assemble(t, "tiny32", `
	.org 0x0
	halt
	.org 0x1000
	.word 7
`)
	if len(p.Segments) != 2 {
		t.Fatalf("segments = %d", len(p.Segments))
	}
	if p.Segments[1].Addr != 0x1000 {
		t.Errorf("second segment at %#x", p.Segments[1].Addr)
	}
}

func TestHi20Lo12Pairing(t *testing.T) {
	// The RISC-V idiom must reconstruct any address, including ones where
	// lo12 is negative.
	for _, addr := range []uint64{0x0, 0x7ff, 0x800, 0x801, 0x12345, 0xfffff800} {
		src := "\t.equ target, " + hex(addr) + "\n_start:\n\tlui t0, hi20(target)\n\taddi t0, t0, lo12(target)\n\tebreak\n"
		p, err := asm.New(arch.MustLoad("rv32i")).Assemble("t.s", src)
		if err != nil {
			t.Fatalf("%#x: %v", addr, err)
		}
		_ = p
	}
}

func hex(v uint64) string {
	const digits = "0123456789abcdef"
	out := []byte{}
	for v > 0 {
		out = append([]byte{digits[v%16]}, out...)
		v /= 16
	}
	if len(out) == 0 {
		out = []byte{'0'}
	}
	return "0x" + string(out)
}

// Command asmtool assembles a source file into a program image (RIMG)
// using the retargetable, ADL-driven assembler.
//
// Usage:
//
//	asmtool -arch <name> [-o out.rimg] <file.s>
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/arch"
	"repro/internal/asm"
)

func main() {
	archName := flag.String("arch", "tiny32", "target architecture (see adlc -list)")
	out := flag.String("o", "a.rimg", "output image file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: asmtool -arch <name> [-o out.rimg] <file.s>")
		os.Exit(2)
	}
	a, err := arch.Load(*archName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p, err := asm.New(a).Assemble(flag.Arg(0), string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, p.Marshal(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d bytes, entry %#x, %d symbols -> %s\n",
		*archName, p.Size(), p.Entry, len(p.Symbols), *out)
}

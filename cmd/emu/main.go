// Command emu runs a program image on the ADL-generated concrete
// emulator. Input bytes for the read trap come from -input; output bytes
// are printed on exit.
//
// Usage:
//
//	emu [-input <string>] [-steps N] [-trace] [-no-compile] [-cover] [-cover-out f] <image.rimg>
//
// Execution runs through the semantics compiler and superblock cache by
// default (docs/compile.md); -no-compile interprets every instruction.
//
// -cover and -cover-out measure semantic coverage of the loaded ADL on
// the concrete layer (docs/coverage.md): the JSON report goes to the
// named file, the human-readable matrix to stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/arch"
	"repro/internal/conc"
	"repro/internal/cover"
	"repro/internal/decoder"
	"repro/internal/prog"
)

func main() {
	input := flag.String("input", "", "bytes fed to the read trap")
	steps := flag.Int64("steps", 1_000_000, "instruction budget")
	trace := flag.Bool("trace", false, "print each executed instruction")
	noCompile := flag.Bool("no-compile", false, "disable the semantics compiler and superblocks (docs/compile.md)")
	coverOn := flag.Bool("cover", false, "collect semantic coverage; the matrix goes to stderr")
	coverOut := flag.String("cover-out", "", "write the coverage report as JSON to this file (implies -cover)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: emu [-input s] [-steps n] [-trace] <image.rimg>")
		os.Exit(2)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p, err := prog.Unmarshal(raw)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	a, err := arch.Load(p.Arch)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m := conc.NewMachine(a)
	m.NoCompile = *noCompile
	var coll *cover.Collector
	if *coverOn || *coverOut != "" {
		coll = cover.New()
		m.SetCover(coll.Bind(a))
	}
	m.LoadProgram(p)
	m.Input = []byte(*input)

	var stop conc.Stop
	if *trace {
		d := decoder.New(a)
		for i := int64(0); ; i++ {
			if i >= *steps {
				stop = conc.Stop{Kind: conc.StopSteps, PC: m.PC()}
				break
			}
			pc := m.PC()
			buf := make([]byte, a.MaxInsnBytes())
			for j := range buf {
				buf[j] = m.Mem(pc + uint64(j))
			}
			if dec, err := d.Decode(buf); err == nil {
				fmt.Printf("%#08x: %s\n", pc, decoder.Disasm(dec, pc))
			}
			if s := m.Step(); s != nil {
				stop = *s
				break
			}
		}
	} else {
		stop = m.Run(*steps)
	}

	// Coverage output stays off stdout: JSON to -cover-out, the matrix
	// to stderr.
	if coll != nil {
		if *coverOut != "" {
			data, err := coll.JSON()
			if err == nil {
				err = os.WriteFile(*coverOut, data, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "cover-out: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "cover-out: wrote coverage report to %s\n", *coverOut)
		}
		coll.WriteText(os.Stderr)
	}

	fmt.Printf("stopped: %v after %d instructions\n", stop, m.Steps)
	if len(m.Output) > 0 {
		fmt.Printf("output: %q  (bytes % x)\n", m.Output, m.Output)
	}
}

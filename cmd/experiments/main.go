// Command experiments regenerates every table and figure of the
// reconstructed evaluation (see DESIGN.md §3 and EXPERIMENTS.md) and
// prints them to stdout.
//
// Usage:
//
//	experiments [-only table1|table2|table3|fig1|fig2|fig3|fig4]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	only := flag.String("only", "", "run a single experiment (table1..table5, fig1..fig4)")
	flag.Parse()

	switch *only {
	case "":
		harness.RunAll(os.Stdout)
	case "table1":
		harness.RunTable1().Print(os.Stdout)
	case "table2":
		harness.RunTable2().Print(os.Stdout)
	case "table3":
		harness.RunTable3().Print(os.Stdout)
	case "table4":
		harness.RunTable4(8).Print(os.Stdout)
	case "table5":
		harness.RunTable5().Print(os.Stdout)
	case "fig1":
		harness.PrintFig1(os.Stdout, harness.RunFig1(8))
	case "fig2":
		harness.PrintFig2(os.Stdout, harness.RunFig2(9))
	case "fig3":
		harness.PrintFig3(os.Stdout, harness.RunFig3([]int{3, 5, 7}))
	case "fig4":
		harness.PrintFig4(os.Stdout, harness.RunFig4([]uint{8, 16, 24, 32, 48, 64}))
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}
}

// Command experiments regenerates every table and figure of the
// reconstructed evaluation (see DESIGN.md §3 and EXPERIMENTS.md) and
// prints them to stdout.
//
// Usage:
//
//	experiments [-only table1|table2|table3|fig1|fig2|fig3|fig4|parallel|obs|obs-stages|
//	                   coverage|cover-overhead|governor|compile|service-cache|profile-overhead|
//	                   ledger|progress-overhead|checkpoint-overhead]
//	            [-obs-addr :8089] [-ledger DIR] [-bench-out BENCH_ledger.json]
//
// -only ledger appends the parallel-scaling workloads to a run ledger
// (a throwaway one unless -ledger names a directory to accumulate
// baselines in) and exports each config's trajectory — rolling medians
// plus the latest run's regression-gate verdict — to -bench-out.
// -only progress-overhead measures the cost of the live-progress
// instrument plus the per-run ledger append (docs/observability.md).
// -only checkpoint-overhead measures the cost of durable exploration
// checkpoints at three paces against a checkpoint-free serial run
// (docs/service.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/internal/obs"
)

func main() {
	only := flag.String("only", "", "run a single experiment (table1..table5, fig1..fig4, parallel, obs, obs-stages, coverage, cover-overhead, governor, compile, service-cache, profile-overhead, ledger, progress-overhead, checkpoint-overhead)")
	workers := flag.String("workers", "1,2,4", "comma-separated worker counts for -only parallel/obs/cover-overhead/governor/profile-overhead/ledger/progress-overhead (0 = all CPUs)")
	obsAddr := flag.String("obs-addr", "", "serve expvar and pprof on this address while experiments run (for live profiling)")
	ledgerDir := flag.String("ledger", "", "run-ledger directory for -only ledger (empty = throwaway temp dir)")
	benchOut := flag.String("bench-out", "BENCH_ledger.json", "trajectory export path for -only ledger")
	flag.Parse()

	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, obs.New())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: serving /metrics, /debug/vars, /debug/pprof on %s\n", srv.Addr())
	}

	var workerCounts []int
	for _, f := range strings.Split(*workers, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 0 {
			fmt.Fprintf(os.Stderr, "bad -workers value %q\n", f)
			os.Exit(2)
		}
		if n == 0 {
			n = runtime.NumCPU()
		}
		workerCounts = append(workerCounts, n)
	}

	switch *only {
	case "":
		harness.RunAll(os.Stdout)
	case "table1":
		harness.RunTable1().Print(os.Stdout)
	case "table2":
		harness.RunTable2().Print(os.Stdout)
	case "table3":
		harness.RunTable3().Print(os.Stdout)
	case "table4":
		harness.RunTable4(8).Print(os.Stdout)
	case "table5":
		harness.RunTable5().Print(os.Stdout)
	case "fig1":
		harness.PrintFig1(os.Stdout, harness.RunFig1(8))
	case "fig2":
		harness.PrintFig2(os.Stdout, harness.RunFig2(9))
	case "fig3":
		harness.PrintFig3(os.Stdout, harness.RunFig3([]int{3, 5, 7}))
	case "fig4":
		harness.PrintFig4(os.Stdout, harness.RunFig4([]uint{8, 16, 24, 32, 48, 64}))
	case "parallel":
		harness.RunParallelScaling(workerCounts).Print(os.Stdout)
	case "obs":
		harness.RunObsOverhead(workerCounts).Print(os.Stdout)
	case "obs-stages":
		harness.RunObsStages().Print(os.Stdout)
	case "coverage":
		harness.RunCoverageMatrix().Print(os.Stdout)
	case "cover-overhead":
		harness.RunCoverOverhead(workerCounts).Print(os.Stdout)
	case "governor":
		harness.RunGovernorOverhead(workerCounts).Print(os.Stdout)
	case "compile":
		harness.RunCompileBench().Print(os.Stdout)
	case "service-cache":
		harness.RunServiceCache().Print(os.Stdout)
	case "profile-overhead":
		harness.RunProfileOverhead(workerCounts).Print(os.Stdout)
	case "ledger":
		dir := *ledgerDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "symex-ledger-")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		traj, err := harness.RunLedgerTrajectory(dir, workerCounts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		traj.Print(os.Stdout)
		if err := traj.WriteJSON(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench-out: wrote trajectory to %s\n", *benchOut)
	case "progress-overhead":
		harness.RunProgressOverhead(workerCounts).Print(os.Stdout)
	case "checkpoint-overhead":
		harness.RunCheckpointOverhead().Print(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}
}

// Command minicc compiles MiniC source (see internal/minic) to assembly
// or directly to a program image for any supported target architecture.
//
// Usage:
//
//	minicc -arch rv32i [-S] [-o out] prog.c
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/arch"
	"repro/internal/asm"
	"repro/internal/minic"
)

func main() {
	archName := flag.String("arch", "tiny32", "target architecture")
	emitAsm := flag.Bool("S", false, "emit assembly instead of an image")
	out := flag.String("o", "", "output file (default a.s / a.rimg)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicc -arch <name> [-S] [-o out] <prog.c>")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	asmText, err := minic.CompileSource(flag.Arg(0), string(src), *archName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *emitAsm {
		dest := *out
		if dest == "" {
			dest = "a.s"
		}
		if err := os.WriteFile(dest, []byte(asmText), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s: wrote %s\n", *archName, dest)
		return
	}
	a, err := arch.Load(*archName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p, err := asm.New(a).Assemble(flag.Arg(0)+".s", asmText)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dest := *out
	if dest == "" {
		dest = "a.rimg"
	}
	if err := os.WriteFile(dest, p.Marshal(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d bytes, entry %#x -> %s\n", *archName, p.Size(), p.Entry, dest)
}

// Command adlc validates an architecture description and prints a
// summary of the generated model: registers, formats, encodings, and the
// per-instruction mask/match table the decoder is built from.
//
// Usage:
//
//	adlc <file.adl>          validate and summarize a description file
//	adlc -builtin <name>     summarize an embedded architecture
//	adlc -list               list embedded architectures
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/arch"
	"repro/internal/adl"
)

func main() {
	builtin := flag.String("builtin", "", "summarize an embedded architecture instead of a file")
	list := flag.Bool("list", false, "list embedded architectures")
	verbose := flag.Bool("v", false, "print the full instruction table")
	flag.Parse()

	if *list {
		for _, n := range arch.Names() {
			fmt.Println(n)
		}
		return
	}

	var a *adl.Arch
	var err error
	switch {
	case *builtin != "":
		a, err = arch.Load(*builtin)
	case flag.NArg() == 1:
		var src []byte
		src, err = os.ReadFile(flag.Arg(0))
		if err == nil {
			a, err = adl.Load(flag.Arg(0), string(src))
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: adlc [-v] <file.adl> | adlc -builtin <name> | adlc -list")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println(a)
	fmt.Printf("  memory: %s, %d-bit addresses, %d-bit cells\n", a.Space.Name, a.Space.AddrBits, a.Space.CellBits)
	if a.SP != nil {
		fmt.Printf("  stack pointer: %s\n", a.SP.Name)
	}
	for _, f := range a.Formats {
		fmt.Printf("  format %-4s %2d bits:", f.Name, f.Width)
		for _, fd := range f.Fields {
			fmt.Printf(" %s[%d:%d]", fd.Name, fd.Hi, fd.Lo)
		}
		fmt.Println()
	}
	if *verbose {
		fmt.Println("  instructions (mask/match):")
		for _, i := range a.Insns {
			fmt.Printf("    %-8s %-4s mask=%0*x match=%0*x  %d operands\n",
				i.Name, i.Format.Name,
				int(i.Format.Width/4), i.Mask, int(i.Format.Width/4), i.Match,
				len(i.Operands))
		}
	}
}

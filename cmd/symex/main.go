// Command symex symbolically executes a program image with the
// retargetable engine, runs the security checkers, and reports every
// finding with a concrete reproducing input.
//
// Usage:
//
//	symex [-inputs N] [-steps N] [-paths N] [-strategy s] [-workers N] [-paths-detail]
//	      [-solver-deadline 2s] [-state-budget N] [-no-compile]
//	      [-cover] [-cover-out cover.json] [-obs-addr :8089] [-trace-out trace.json]
//	      [-profile] [-profile-out prof.pb.gz] [-profile-json prof.json]
//	      [-ledger DIR] [-ledger-gate] [-ledger-fake-slowdown D]
//	      <image.rimg>
//
// Execution runs through the semantics compiler and superblock cache by
// default (docs/compile.md); -no-compile is the interpretation ablation.
// The compile/superblock summary goes to stderr with the other
// diagnostics.
//
// The per-path summary goes to stdout; worker and cache statistics go to
// stderr so stdout stays pipeable. -obs-addr serves live Prometheus
// metrics, /coverage, expvar and pprof for the duration of the run;
// -trace-out writes the exploration timeline as Chrome trace_event
// JSON, loadable by Perfetto (see docs/observability.md). -cover and
// -cover-out measure semantic coverage of the loaded ADL
// (docs/coverage.md) fully offline: the JSON report goes to the named
// file and the human-readable matrix to stderr.
//
// -profile attributes exploration cost (solver time, queries, forks,
// step time, kills) to guest program counters and prints the ranked
// hotspot report — including diamond fork/rejoin merge candidates — to
// stderr. -profile-out writes the same attribution as a gzipped pprof
// protobuf whose locations are guest PCs, so
// `go tool pprof -top prof.pb.gz` renders a guest-code profile;
// -profile-json writes the machine-readable report. Any of the three
// arms the profiler (see docs/observability.md).
//
// -ledger appends one run record (cost, shape, coverage, hotspots) to
// the append-only run ledger in DIR; -ledger-gate then diffs the run
// against the rolling median of prior runs of the same configuration
// and exits 5 naming the regressed metric on stderr when wall time,
// solver time, or coverage moved the wrong way (docs/observability.md).
// -ledger-fake-slowdown inflates the recorded times before gating — a
// testing aid that makes the red path demonstrable on demand.
//
// -solver-deadline and -state-budget arm the resource governor
// (docs/robustness.md): a query past the wall-clock deadline or a state
// past the term budget degrades gracefully — over-approximated or
// killed, never a run failure — and the per-cause degradation counts
// plus any recovered path faults are summarized on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/arch"
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/expr"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/prog"
)

func main() {
	inputs := flag.Int("inputs", 8, "symbolic input bytes available to the read trap")
	steps := flag.Int64("steps", 10000, "per-path instruction budget")
	paths := flag.Int("paths", 1000, "completed-path budget")
	strategy := flag.String("strategy", "dfs", "search strategy: dfs|bfs|random|coverage")
	detail := flag.Bool("paths-detail", false, "print every completed path")
	dumpSMT := flag.Int("dump-smtlib", 0, "print the first N path conditions as SMT-LIB 2 scripts")
	concolic := flag.Int("concolic", 0, "run generational concolic testing with up to N concrete executions instead of full exploration")
	seed := flag.String("seed", "", "seed input for -concolic")
	workers := flag.Int("workers", 1, "parallel exploration workers (0 = all CPUs)")
	noCache := flag.Bool("no-query-cache", false, "disable the shared solver-query cache")
	noCompile := flag.Bool("no-compile", false, "disable the semantics compiler and superblocks (docs/compile.md); interpret every step")
	solverDeadline := flag.Duration("solver-deadline", 0, "wall-clock budget per solver query; expiry over-approximates (docs/robustness.md)")
	stateBudget := flag.Int("state-budget", 0, "per-state symbolic term budget; oversized states are killed gracefully")
	obsAddr := flag.String("obs-addr", "", "serve live /metrics, /coverage, expvar and pprof on this address")
	traceOut := flag.String("trace-out", "", "write the exploration trace as Chrome trace_event JSON to this file")
	coverOn := flag.Bool("cover", false, "collect semantic coverage; the matrix goes to stderr")
	coverOut := flag.String("cover-out", "", "write the coverage report as JSON to this file (implies -cover)")
	profileOn := flag.Bool("profile", false, "attribute exploration cost to guest PCs; the hotspot report goes to stderr")
	profileOut := flag.String("profile-out", "", "write the exploration profile as gzipped pprof protobuf to this file (implies -profile)")
	profileJSON := flag.String("profile-json", "", "write the exploration profile report as JSON to this file (implies -profile)")
	ledgerDir := flag.String("ledger", "", "append this run's record to the run ledger in this directory (docs/observability.md)")
	ledgerGate := flag.Bool("ledger-gate", false, "gate this run against its rolling same-config baseline; a regression names the metric on stderr and exits 5")
	ledgerSlow := flag.Duration("ledger-fake-slowdown", 0, "testing aid: inflate the recorded wall and solver times by this duration before gating")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: symex [flags] <image.rimg>")
		os.Exit(2)
	}

	var strat core.Strategy
	switch *strategy {
	case "dfs":
		strat = core.DFS
	case "bfs":
		strat = core.BFS
	case "random":
		strat = core.Random
	case "coverage":
		strat = core.Coverage
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p, err := prog.Unmarshal(raw)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	a, err := arch.Load(p.Arch)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *workers == 0 {
		*workers = runtime.NumCPU()
	}

	// Coverage collection is on when a -cover* flag asks for it, and
	// also whenever the live endpoint is up, so -obs-addr users get
	// /coverage with no extra flags.
	var coll *cover.Collector
	if *coverOn || *coverOut != "" || *obsAddr != "" {
		coll = cover.New()
	}
	var o *obs.Obs
	if *obsAddr != "" || *traceOut != "" {
		if *traceOut != "" {
			o = obs.NewTracing()
		} else {
			o = obs.New()
		}
		if coll != nil {
			o.Cover = coll
		}
		obs.RegisterBuildInfo(o.Reg, len(arch.Names()))
	}
	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: serving /metrics, /debug/vars, /debug/pprof on %s\n", srv.Addr())
	}
	dumpTrace := func() {
		if *traceOut == "" {
			return
		}
		if err := o.Trace.WriteChromeFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "trace-out: %d events -> %s (open with ui.perfetto.dev)\n",
			o.Trace.Len(), *traceOut)
	}
	var prof *profile.Profiler
	if *profileOn || *profileOut != "" || *profileJSON != "" {
		prof = profile.New(profile.Meta{ADL: p.Arch})
	}
	// Profile output follows the coverage discipline: every surface is
	// a diagnostic (stderr or a named file), stdout stays pipeable.
	dumpProfile := func() {
		if prof == nil {
			return
		}
		if *profileOut != "" {
			f, err := os.Create(*profileOut)
			if err == nil {
				err = prof.WritePprof(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "profile-out: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "profile-out: wrote pprof profile to %s (go tool pprof -top %s)\n",
				*profileOut, *profileOut)
		}
		if *profileJSON != "" {
			data, err := prof.JSON()
			if err == nil {
				err = os.WriteFile(*profileJSON, data, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "profile-json: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "profile-json: wrote profile report to %s\n", *profileJSON)
		}
		if *profileOn {
			prof.WriteText(os.Stderr)
		}
	}
	// Coverage output is fully offline: JSON to -cover-out, the
	// human-readable matrix to stderr, stdout untouched.
	dumpCover := func() {
		if coll == nil {
			return
		}
		if *coverOut != "" {
			data, err := coll.JSON()
			if err == nil {
				err = os.WriteFile(*coverOut, data, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "cover-out: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "cover-out: wrote coverage report to %s\n", *coverOut)
		}
		if *coverOn || *coverOut != "" {
			coll.WriteText(os.Stderr)
		}
	}

	// recordLedger appends this run to the run ledger and, with
	// -ledger-gate, diffs it against the rolling median of prior runs of
	// the same configuration. A regression names the offending metric on
	// stderr and exits 5 (distinct from the bug exit 3), so CI can tell
	// "got slower" from "found bugs".
	recordLedger := func(st core.Stats, mode string, bugs int) {
		if *ledgerDir == "" {
			return
		}
		led, err := ledger.Open(*ledgerDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ledger: %v\n", err)
			os.Exit(1)
		}
		defer led.Close()
		summary := fmt.Sprintf("mode=%s inputs=%d steps=%d paths=%d workers=%d strategy=%s",
			mode, *inputs, *steps, *paths, *workers, *strategy)
		in := ledger.BuildInput{
			Source:  "symex",
			Label:   flag.Arg(0),
			Digest:  ledger.Digest(p.Arch, raw, summary),
			ISA:     p.Arch,
			Mode:    mode,
			Workers: *workers,
			Bugs:    bugs,
			Stats:   st,
			Now:     time.Now(),
		}
		if coll != nil {
			in.Cover = coll.Report()
		}
		if prof != nil {
			in.Profile = prof.Report()
		}
		rec := ledger.Build(in)
		if *ledgerSlow > 0 {
			rec.WallNS += int64(*ledgerSlow)
			rec.SolverNS += int64(*ledgerSlow)
		}
		history := led.Records()
		if err := led.Append(rec); err != nil {
			fmt.Fprintf(os.Stderr, "ledger: %v\n", err)
			os.Exit(1)
		}
		prior := 0
		for _, r := range history {
			if r.Digest == rec.Digest {
				prior++
			}
		}
		fmt.Fprintf(os.Stderr, "ledger: appended run %s (%d prior runs of this config) to %s\n",
			rec.Digest, prior, led.Path())
		if *ledgerGate {
			if regs := ledger.Gate(history, rec, ledger.GateOptions{}); len(regs) > 0 {
				for _, r := range regs {
					fmt.Fprintf(os.Stderr, "ledger-gate: %s\n", r)
				}
				os.Exit(5)
			}
			fmt.Fprintf(os.Stderr, "ledger-gate: green (wall %v, solver %v vs %d-run baseline)\n",
				rec.Wall().Round(time.Microsecond), rec.Solver().Round(time.Microsecond), prior)
		}
	}

	e := core.NewEngine(a, p, core.Options{
		InputBytes:     *inputs,
		MaxSteps:       *steps,
		MaxPaths:       *paths,
		Strategy:       strat,
		Workers:        *workers,
		NoQueryCache:   *noCache,
		NoCompile:      *noCompile,
		SolverDeadline: *solverDeadline,
		MaxStateTerms:  *stateBudget,
		Obs:            o,
		Cover:          coll,
		Profile:        prof,
	})
	for _, c := range checker.All() {
		e.AddChecker(c)
	}

	if *concolic > 0 {
		t0 := time.Now()
		rep, err := e.Concolic([]byte(*seed), *concolic)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		dumpTrace()
		dumpCover()
		dumpProfile()
		cs := rep.Stats
		cs.Coverage = rep.Coverage
		cs.PathsDone = len(rep.Paths) // the concolic loop doesn't count paths
		cs.WallTime = time.Since(t0)  // ... nor self-time
		recordLedger(cs, "concolic", len(rep.Bugs))
		if len(rep.Faults) > 0 {
			fmt.Fprintf(os.Stderr, "faults: %d runs ended by recovered panics:\n", len(rep.Faults))
			for _, f := range rep.Faults {
				fmt.Fprintf(os.Stderr, "  %v\n", f)
			}
		}
		fmt.Printf("%s: %d concrete runs, %d solver-derived inputs, %d instructions covered\n",
			p.Arch, len(rep.Paths), rep.Solved, rep.Coverage)
		for i, pth := range rep.Paths {
			fmt.Printf("  run %2d: input % x -> %v, output %q\n", i, pth.Input, pth.Status, pth.Output)
		}
		if len(rep.Bugs) > 0 {
			fmt.Printf("%d findings:\n", len(rep.Bugs))
			for _, b := range rep.Bugs {
				fmt.Printf("  %v\n", b)
			}
			os.Exit(3)
		}
		fmt.Println("no findings")
		return
	}

	r, err := e.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dumpTrace()
	dumpCover()
	dumpProfile()
	recordLedger(r.Stats, "explore", len(r.Bugs))

	fmt.Printf("%s: %d paths, %d instructions, %d forks (%d infeasible), %v\n",
		p.Arch, len(r.Paths), r.Stats.Instructions, r.Stats.Forks,
		r.Stats.Infeasible, r.Stats.WallTime.Round(1000))
	fmt.Printf("solver: %d queries (%d sat / %d unsat), %v solving\n",
		r.Stats.Solver.Queries, r.Stats.Solver.SatResults,
		r.Stats.Solver.UnsatCount, r.Stats.Solver.SolveTime.Round(1000))
	// Cache and worker statistics are diagnostics, not results: they go
	// to stderr so stdout stays pipeable.
	if h, m := r.Stats.Solver.CacheHits, r.Stats.Solver.CacheMisses; h+m > 0 {
		fmt.Fprintf(os.Stderr, "query cache: %d hits / %d misses (%.1f%% hit rate)\n",
			h, m, 100*float64(h)/float64(h+m))
	}
	// Semantics-compiler statistics (docs/compile.md): how much of the
	// run executed through compiled units and superblocks.
	if r.Stats.CompiledUnits > 0 {
		share := 0.0
		if r.Stats.Instructions > 0 {
			share = 100 * float64(r.Stats.SuperblockInsns) / float64(r.Stats.Instructions)
		}
		fmt.Fprintf(os.Stderr, "compile: %d units, %d superblocks, %d hits, %d insns in superblocks (%.0f%% of run)\n",
			r.Stats.CompiledUnits, r.Stats.Superblocks, r.Stats.SuperblockHits, r.Stats.SuperblockInsns, share)
	}
	for _, ws := range r.Stats.WorkerStats {
		util := 0.0
		if r.Stats.WallTime > 0 {
			util = 100 * float64(ws.Busy) / float64(r.Stats.WallTime)
		}
		fmt.Fprintf(os.Stderr, "worker %d: %d instructions, %d paths, %d steals, %.0f%% busy\n",
			ws.ID, ws.Steps, ws.Paths, ws.Steals, util)
	}
	// Governor and fault-isolation diagnostics (docs/robustness.md):
	// only printed when something actually degraded or panicked.
	if r.Stats.Degraded.Total() > 0 {
		fmt.Fprintf(os.Stderr, "governor: %d degradations:", r.Stats.Degraded.Total())
		for c := core.DegradeCause(0); c < core.NumDegradeCauses; c++ {
			if n := r.Stats.Degraded[c]; n > 0 {
				fmt.Fprintf(os.Stderr, " %s=%d", c, n)
			}
		}
		fmt.Fprintln(os.Stderr)
	}
	if len(r.Faults) > 0 {
		fmt.Fprintf(os.Stderr, "faults: %d paths ended by recovered panics:\n", len(r.Faults))
		for _, f := range r.Faults {
			fmt.Fprintf(os.Stderr, "  %v\n", f)
		}
	}

	byStatus := map[core.Status]int{}
	for _, pth := range r.Paths {
		byStatus[pth.Status]++
	}
	fmt.Printf("path statuses: %v\n", byStatus)

	if *detail {
		for _, pth := range r.Paths {
			fmt.Printf("  path %d: %v steps=%d depth=%d |cond|=%d out=%d\n",
				pth.ID, pth.Status, pth.Steps, pth.Depth, len(pth.PathCond), len(pth.Output))
		}
	}

	for i, pth := range r.Paths {
		if i >= *dumpSMT {
			break
		}
		fmt.Printf("; path %d (%v) condition:\n%s", pth.ID, pth.Status,
			expr.SMTLIB2String(pth.PathCond))
	}

	if len(r.Bugs) == 0 {
		fmt.Println("no findings")
		return
	}
	fmt.Printf("%d findings:\n", len(r.Bugs))
	for _, b := range r.Bugs {
		fmt.Printf("  %v\n", b)
	}
	os.Exit(3) // distinct exit code when bugs were found
}

// Command difftest runs the differential oracle: ADL-driven cross-layer
// fuzzing of the decoder, assembler, RTL evaluators, symbolic engine and
// SMT solver against concrete execution (see docs/difftest.md).
//
// Usage:
//
//	difftest [-duration 30s | -rounds N] [-seed N] [-arch a,b] \
//	         [-workers 1,2] [-steps N] [-corpus dir] [-adl name=file] \
//	         [-obs-addr :8089] [-trace-out trace.json] [-v]
//
// The run is a pure function of the seed; every divergence is reported
// with the sub-seed, a minimized program and the triggering input, and
// (with -corpus) a replayable counterexample file. Exit status 1 means
// at least one divergence was found.
//
// -obs-addr serves live Prometheus metrics, expvar and pprof for the
// duration of the soak; -trace-out writes the Chrome trace_event
// timeline of the first divergent round (see docs/observability.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/arch"
	"repro/internal/difftest"
	"repro/internal/obs"
)

func main() {
	duration := flag.Duration("duration", 0, "wall-clock budget (overrides -rounds)")
	rounds := flag.Int("rounds", 0, "fixed number of rounds (default 16 when no -duration)")
	seed := flag.Int64("seed", 0, "master seed")
	arches := flag.String("arch", "", "comma-separated architectures (default: all embedded)")
	workers := flag.String("workers", "", "comma-separated engine worker counts (default 1,2)")
	steps := flag.Int64("steps", 0, "per-program instruction budget (default 512)")
	corpus := flag.String("corpus", "", "directory for counterexample files")
	obsAddr := flag.String("obs-addr", "", "serve live /metrics, expvar and pprof on this address")
	traceOut := flag.String("trace-out", "", "write the Chrome trace of the first divergent round to this file")
	verbose := flag.Bool("v", false, "log per-round progress")

	// -adl name=file overrides the subject description for one
	// architecture; the reference emulator keeps the embedded text, so a
	// deliberately altered description shows up as counterexamples.
	overrides := map[string]string{}
	flag.Func("adl", "subject ADL override, name=file (repeatable)", func(s string) error {
		name, file, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want name=file, got %q", s)
		}
		overrides[name] = file
		return nil
	})
	flag.Parse()

	opts := difftest.Options{
		Seed:      *seed,
		Rounds:    *rounds,
		Duration:  *duration,
		MaxSteps:  *steps,
		CorpusDir: *corpus,
		TraceOut:  *traceOut,
	}
	if *obsAddr != "" {
		opts.Obs = obs.New()
		srv, err := obs.Serve(*obsAddr, opts.Obs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: serving /metrics, /debug/vars, /debug/pprof on %s\n", srv.Addr())
	}
	if *arches != "" {
		opts.Arches = strings.Split(*arches, ",")
	}
	if *workers != "" {
		for _, w := range strings.Split(*workers, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(w))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "difftest: bad worker count %q\n", w)
				os.Exit(2)
			}
			opts.Workers = append(opts.Workers, n)
		}
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	if len(overrides) > 0 {
		opts.Source = func(name string) (string, error) {
			if file, ok := overrides[name]; ok {
				src, err := os.ReadFile(file)
				return string(src), err
			}
			return arch.Source(name)
		}
	}

	res, err := difftest.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Print(res.Summary())
	for _, d := range res.Divergences {
		fmt.Printf("\n%v\n", d)
	}
	if len(res.Divergences) > 0 {
		os.Exit(1)
	}
}

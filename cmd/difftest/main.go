// Command difftest runs the differential oracle: ADL-driven cross-layer
// fuzzing of the decoder, assembler, RTL evaluators, symbolic engine and
// SMT solver against concrete execution (see docs/difftest.md).
//
// Usage:
//
//	difftest [-duration 30s | -rounds N] [-seed N] [-arch a,b] \
//	         [-workers 1,2] [-steps N] [-corpus dir] [-adl name=file] \
//	         [-layers roundtrip,concsym,explore,solver,probe,compile,service] \
//	         [-cover] [-cover-out cover.json] [-cover-guided=false] \
//	         [-cover-target 0.9] [-cover-min 0.9] \
//	         [-chaos] [-chaos-period N] [-service-addr host:port] \
//	         [-obs-addr :8089] [-trace-out trace.json] [-v]
//
// The run is a pure function of the seed; every divergence is reported
// with the sub-seed, a minimized program and the triggering input, and
// (with -corpus) a replayable counterexample file. Exit status 1 means
// at least one divergence was found; exit status 4 means the run was
// clean but -cover-min was not reached.
//
// The -cover family measures semantic coverage (docs/coverage.md):
// -cover prints the per-ISA matrix to stderr, -cover-out writes the
// JSON report, -cover-target turns the soak coverage-budgeted (run
// until every architecture's floor reaches the target instead of a
// fixed round count), and coverage-guided generation (on by default
// when collecting) biases instruction selection toward uncovered
// cells. All of this works fully offline — no -obs-addr needed — and
// every human-readable summary goes to stderr so stdout stays
// pipeable.
//
// -chaos arms the deterministic fault injector across every layer
// (docs/robustness.md): panics, solver budget/deadline faults and
// malformed decodes are injected at roughly one per -chaos-period
// calls per site, comparisons perturbed by a fault are skipped, and
// the fault accounting (injected vs surfaced, per site) is printed to
// stderr. A chaos run must stay divergence-free: a divergence under
// chaos is a fault-isolation bug, not a semantic one.
//
// -service-addr points the oracle at a running symexd daemon
// (docs/service.md): generated exploration programs are also submitted
// over the job API and the streamed results must match a direct
// in-process run. Incompatible with -adl overrides, since the daemon
// analyzes with its embedded descriptions.
//
// -obs-addr serves live Prometheus metrics, /coverage, expvar and
// pprof for the duration of the soak; -trace-out writes the Chrome
// trace_event timeline of the first divergent round (see
// docs/observability.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/arch"
	"repro/internal/cover"
	"repro/internal/difftest"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/profile"
)

func main() {
	duration := flag.Duration("duration", 0, "wall-clock budget (overrides -rounds)")
	rounds := flag.Int("rounds", 0, "fixed number of rounds (default 16 when no -duration)")
	seed := flag.Int64("seed", 0, "master seed")
	arches := flag.String("arch", "", "comma-separated architectures (default: all embedded)")
	workers := flag.String("workers", "", "comma-separated engine worker counts (default 1,2)")
	steps := flag.Int64("steps", 0, "per-program instruction budget (default 512)")
	corpus := flag.String("corpus", "", "directory for counterexample files")
	obsAddr := flag.String("obs-addr", "", "serve live /metrics, /coverage, expvar and pprof on this address")
	traceOut := flag.String("trace-out", "", "write the Chrome trace of the first divergent round to this file")
	coverOn := flag.Bool("cover", false, "collect semantic coverage; the matrix goes to stderr")
	coverOut := flag.String("cover-out", "", "write the coverage report as JSON to this file (implies -cover)")
	coverGuided := flag.Bool("cover-guided", true, "bias generation toward uncovered instructions (with -cover)")
	coverTarget := flag.Float64("cover-target", 0, "run until every architecture's coverage floor reaches this fraction (implies -cover)")
	coverMin := flag.Float64("cover-min", 0, "exit 4 when any architecture's final coverage floor is below this fraction (implies -cover)")
	layers := flag.String("layers", "", "comma-separated oracle layers to run (roundtrip,concsym,explore,solver,probe,compile; default all)")
	profileOn := flag.Bool("profile", false, "attribute explore-layer cost to guest PCs; the hotspot report goes to stderr")
	profileOut := flag.String("profile-out", "", "write the exploration profile as gzipped pprof protobuf to this file (implies -profile)")
	chaos := flag.Bool("chaos", false, "arm the fault injector at every site (docs/robustness.md)")
	chaosPeriod := flag.Int("chaos-period", 0, "approximate calls between injected faults per site (default 2000, implies -chaos)")
	serviceAddr := flag.String("service-addr", "", "also drive a running symexd daemon at this address and match its results against direct runs (docs/service.md)")
	ledgerDir := flag.String("ledger", "", "append one soak record (rounds, checks, coverage floors) to the run ledger in this directory")
	verbose := flag.Bool("v", false, "log per-round progress")

	// -adl name=file overrides the subject description for one
	// architecture; the reference emulator keeps the embedded text, so a
	// deliberately altered description shows up as counterexamples.
	overrides := map[string]string{}
	flag.Func("adl", "subject ADL override, name=file (repeatable)", func(s string) error {
		name, file, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want name=file, got %q", s)
		}
		overrides[name] = file
		return nil
	})
	flag.Parse()

	opts := difftest.Options{
		Seed:        *seed,
		Rounds:      *rounds,
		Duration:    *duration,
		MaxSteps:    *steps,
		CorpusDir:   *corpus,
		TraceOut:    *traceOut,
		Chaos:       *chaos || *chaosPeriod > 0,
		ChaosPeriod: *chaosPeriod,
		ServiceAddr: *serviceAddr,
	}
	// Coverage collection is on when any -cover* flag asks for it, and
	// also whenever the live endpoint is up, so -obs-addr users get
	// /coverage with no extra flags.
	var coll *cover.Collector
	if *coverOn || *coverOut != "" || *coverTarget > 0 || *coverMin > 0 || *obsAddr != "" {
		coll = cover.New()
		opts.Cover = coll
		opts.CoverGuided = *coverGuided
		opts.CoverTarget = *coverTarget
	}
	var prof *profile.Profiler
	if *profileOn || *profileOut != "" {
		prof = profile.New(profile.Meta{ADL: "difftest"})
		opts.Profile = prof
	}
	if *obsAddr != "" {
		opts.Obs = obs.New()
		opts.Obs.Cover = coll
		if prof != nil {
			opts.Obs.Profile = prof
		}
		srv, err := obs.Serve(*obsAddr, opts.Obs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: serving /metrics, /debug/vars, /debug/pprof on %s\n", srv.Addr())
	}
	if *arches != "" {
		opts.Arches = strings.Split(*arches, ",")
	}
	if *layers != "" {
		opts.Layers = strings.Split(*layers, ",")
	}
	if *workers != "" {
		for _, w := range strings.Split(*workers, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(w))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "difftest: bad worker count %q\n", w)
				os.Exit(2)
			}
			opts.Workers = append(opts.Workers, n)
		}
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	if len(overrides) > 0 {
		// The daemon analyzes with its embedded descriptions, so pairing
		// -service-addr with a subject override would "compare" two
		// different ADLs and report bogus divergences.
		if *serviceAddr != "" {
			fmt.Fprintln(os.Stderr, "difftest: -service-addr cannot be combined with -adl overrides (the daemon serves the embedded ADLs)")
			os.Exit(2)
		}
		opts.Source = func(name string) (string, error) {
			if file, ok := overrides[name]; ok {
				src, err := os.ReadFile(file)
				return string(src), err
			}
			return arch.Source(name)
		}
	}

	res, err := difftest.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Coverage output is fully offline: the JSON report goes to
	// -cover-out and the human-readable matrix to stderr, keeping
	// stdout (summary + divergences) pipeable.
	if coll != nil {
		if *coverOut != "" {
			data, err := coll.JSON()
			if err == nil {
				err = os.WriteFile(*coverOut, data, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "cover-out: %v\n", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "cover-out: wrote coverage report to %s\n", *coverOut)
		}
		coll.WriteText(os.Stderr)
	}
	// Profile output follows the same discipline: pprof bytes to the
	// named file, the hotspot report to stderr.
	if prof != nil {
		if *profileOut != "" {
			f, err := os.Create(*profileOut)
			if err == nil {
				err = prof.WritePprof(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "profile-out: %v\n", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "profile-out: wrote pprof profile to %s (go tool pprof -top %s)\n",
				*profileOut, *profileOut)
		}
		if *profileOn {
			prof.WriteText(os.Stderr)
		}
	}
	// Chaos fault accounting goes to stderr like the other human
	// summaries; per-site "fired/surfaced" pairs make missing recoveries
	// obvious at a glance.
	if len(res.Injected) > 0 {
		keys := make([]string, 0, len(res.Injected))
		for k := range res.Injected {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(os.Stderr, "chaos: injected faults by site/kind:\n")
		for _, k := range keys {
			fmt.Fprintf(os.Stderr, "  %-20s %d\n", k, res.Injected[k])
		}
		fmt.Fprintf(os.Stderr, "chaos: surfaced panics by site:\n")
		skeys := make([]string, 0, len(res.Surfaced))
		for k := range res.Surfaced {
			skeys = append(skeys, k)
		}
		sort.Strings(skeys)
		for _, k := range skeys {
			fmt.Fprintf(os.Stderr, "  %-20s %d\n", k, res.Surfaced[k])
		}
	}
	// One soak record per run: throughput (rounds, checks) as the cost
	// axes and the per-ISA coverage floors as the coverage map, so the
	// gate catches a soak that got slower or stopped reaching cells.
	// Same-config soaks share a digest regardless of seed — seeds vary
	// the programs, not the workload class.
	if *ledgerDir != "" {
		led, err := ledger.Open(*ledgerDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ledger: %v\n", err)
			os.Exit(2)
		}
		var totalChecks int64
		for _, n := range res.Checks {
			totalChecks += n
		}
		summary := fmt.Sprintf("arches=%s layers=%s workers=%v rounds=%d duration=%v chaos=%v",
			*arches, *layers, opts.Workers, *rounds, *duration, opts.Chaos)
		rec := ledger.Record{
			Time:         time.Now().Unix(),
			Source:       "difftest",
			Label:        fmt.Sprintf("seed=%d", res.Seed),
			Digest:       ledger.Digest("difftest", nil, summary),
			ISA:          "all",
			Mode:         "soak",
			WallNS:       int64(res.Elapsed),
			Instructions: totalChecks,
			Paths:        int64(res.Rounds),
			Bugs:         int64(len(res.Divergences)),
		}
		if coll != nil {
			rep := coll.Report()
			rec.Coverage = make(map[string]float64, len(rep.ISAs))
			for _, ir := range rep.ISAs {
				rec.Coverage[ir.ISA] = ir.Floor()
			}
		}
		if err := led.Append(rec); err != nil {
			fmt.Fprintf(os.Stderr, "ledger: %v\n", err)
			led.Close()
			os.Exit(2)
		}
		led.Close()
		fmt.Fprintf(os.Stderr, "ledger: appended soak record %s to %s\n", rec.Digest, led.Path())
	}

	fmt.Print(res.Summary())
	for _, d := range res.Divergences {
		fmt.Printf("\n%v\n", d)
	}
	if len(res.Divergences) > 0 {
		os.Exit(1)
	}
	if *coverMin > 0 && coll != nil {
		low := false
		for _, ir := range coll.Report().ISAs {
			if f := ir.Floor(); f < *coverMin {
				fmt.Fprintf(os.Stderr, "difftest: %s coverage floor %.1f%% is below -cover-min %.1f%%\n",
					ir.ISA, 100*f, 100**coverMin)
				low = true
			}
		}
		if low {
			os.Exit(4)
		}
	}
}

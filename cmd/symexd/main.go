// symexd is the sharded analysis daemon: it serves the HTTP/JSON job
// API of internal/service (submit program images, poll status, stream
// JSONL results), schedules concurrent jobs under the resource
// governor, and shares one solver-query cache across every job —
// optionally backed by a persistent cross-run cache file. With -ledger
// it records every completed job in the append-only run ledger (served
// at GET /v1/runs, with per-config trends at GET /v1/runs/{digest}),
// and every running job streams live progress snapshots over SSE at
// GET /v1/jobs/{id}/events, paced by -snapshot-interval. The obs
// introspection surface (/metrics, /coverage, pprof) is part of the
// same listener. See docs/service.md.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/arch"
	"repro/internal/cover"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	var (
		addr          = flag.String("addr", ":8090", "listen address (host:port)")
		cacheFile     = flag.String("cache-file", "", "persistent solver-cache file (empty = in-memory only)")
		cacheMax      = flag.Int("cache-max-entries", 0, "LRU bound for the persistent cache (0 = unbounded)")
		flushInterval = flag.Duration("flush-interval", 2*time.Second, "persistent-cache flush period")
		maxConc       = flag.Int("max-concurrent", 2, "jobs running at once")
		queueDepth    = flag.Int("queue-depth", 64, "queued jobs before submissions get 429")
		maxWorkers    = flag.Int("max-workers-per-job", 4, "cap on per-job exploration workers")
		maxSteps      = flag.Int64("max-steps-cap", 200000, "cap on per-job instruction budgets")
		maxPaths      = flag.Int("max-paths-cap", 4096, "cap on per-job path budgets")
		solverDL      = flag.Duration("solver-deadline", 2*time.Second, "per-query solver wall clock (resource governor)")
		maxTerms      = flag.Int("max-state-terms", 0, "per-state symbolic-footprint budget (0 = off)")
		coverage      = flag.Bool("coverage", false, "collect semantic coverage (served at /coverage)")
		ledgerDir     = flag.String("ledger", "", "run-ledger directory: record every completed job, serve GET /v1/runs")
		stateDir      = flag.String("state-dir", "", "crash-safety directory: durable job journal + exploration checkpoints (empty = off)")
		ckptInterval  = flag.Duration("checkpoint-interval", 500*time.Millisecond, "exploration checkpoint pace for serial jobs (needs -state-dir)")
		stallTimeout  = flag.Duration("stall-timeout", 0, "kill jobs making no progress for this long (0 = watchdog off)")
		retryMax      = flag.Int("retry-max", 0, "retries for transient job failures (panics, stalls); 0 = off")
		retryBackoff  = flag.Duration("retry-backoff", 50*time.Millisecond, "first-retry backoff, doubling per attempt")
		snapInterval  = flag.Duration("snapshot-interval", 250*time.Millisecond, "pacing of the per-job SSE progress stream at GET /v1/jobs/{id}/events")
		logFormat     = flag.String("log-format", "text", "structured log format: text or json")
		logLevel      = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	)
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "symexd: %v\n", err)
		os.Exit(1)
	}

	cfg := service.Config{
		MaxConcurrent:      *maxConc,
		QueueDepth:         *queueDepth,
		MaxWorkersPerJob:   *maxWorkers,
		MaxStepsCap:        *maxSteps,
		MaxPathsCap:        *maxPaths,
		SolverDeadline:     *solverDL,
		MaxStateTerms:      *maxTerms,
		CacheFile:          *cacheFile,
		CacheMaxEntries:    *cacheMax,
		FlushInterval:      *flushInterval,
		LedgerDir:          *ledgerDir,
		StateDir:           *stateDir,
		CheckpointInterval: *ckptInterval,
		StallTimeout:       *stallTimeout,
		RetryMax:           *retryMax,
		RetryBackoff:       *retryBackoff,
		SnapshotInterval:   *snapInterval,
		Obs:                obs.New(),
		Logger:             logger,
	}
	obs.RegisterBuildInfo(cfg.Obs.Reg, len(arch.Names()))
	if *coverage {
		cfg.Cover = cover.New()
	}

	srv, err := service.New(cfg)
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}
	httpSrv, err := srv.Listen(*addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	attrs := []any{"addr", httpSrv.Addr()}
	if *ledgerDir != "" {
		ls := srv.LedgerStats()
		mode := "writer"
		if ls.ReadOnly {
			mode = "read-only follower"
		}
		attrs = append(attrs, "ledger_dir", *ledgerDir, "ledger_loaded", ls.Loaded,
			"ledger_corrupt", ls.Corruptions, "ledger_mode", mode)
	}
	if *cacheFile != "" {
		ps := srv.PersistStats()
		mode := "writer"
		if ps.ReadOnly {
			mode = "read-only follower"
		}
		attrs = append(attrs, "cache_file", *cacheFile, "cache_loaded", ps.Loaded,
			"cache_corrupt", ps.Corruptions, "cache_mode", mode)
	}
	if *stateDir != "" {
		js, recovered, resumed := srv.JournalStats()
		mode := "writer"
		if js.ReadOnly {
			mode = "read-only follower"
		}
		attrs = append(attrs, "journal_dir", *stateDir, "journal_recovered", recovered,
			"journal_resumed", resumed, "journal_corrupt", js.Corruptions, "journal_mode", mode)
	}
	logger.Info("symexd listening", attrs...)

	// Graceful shutdown: stop admitting, cancel jobs, flush the cache
	// and release the writer lease before exiting.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Info("draining")
	httpSrv.Close()
	if err := srv.Close(); err != nil {
		logger.Error("shutdown failed", "err", err)
		os.Exit(1)
	}
}

// buildLogger assembles the daemon's slog logger on stderr, so the log
// stream stays separate from anything scripts scrape off stdout.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}

// symexd is the sharded analysis daemon: it serves the HTTP/JSON job
// API of internal/service (submit program images, poll status, stream
// JSONL results), schedules concurrent jobs under the resource
// governor, and shares one solver-query cache across every job —
// optionally backed by a persistent cross-run cache file. The obs
// introspection surface (/metrics, /coverage, pprof) is part of the
// same listener. See docs/service.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cover"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	var (
		addr          = flag.String("addr", ":8090", "listen address (host:port)")
		cacheFile     = flag.String("cache-file", "", "persistent solver-cache file (empty = in-memory only)")
		cacheMax      = flag.Int("cache-max-entries", 0, "LRU bound for the persistent cache (0 = unbounded)")
		flushInterval = flag.Duration("flush-interval", 2*time.Second, "persistent-cache flush period")
		maxConc       = flag.Int("max-concurrent", 2, "jobs running at once")
		queueDepth    = flag.Int("queue-depth", 64, "queued jobs before submissions get 429")
		maxWorkers    = flag.Int("max-workers-per-job", 4, "cap on per-job exploration workers")
		maxSteps      = flag.Int64("max-steps-cap", 200000, "cap on per-job instruction budgets")
		maxPaths      = flag.Int("max-paths-cap", 4096, "cap on per-job path budgets")
		solverDL      = flag.Duration("solver-deadline", 2*time.Second, "per-query solver wall clock (resource governor)")
		maxTerms      = flag.Int("max-state-terms", 0, "per-state symbolic-footprint budget (0 = off)")
		coverage      = flag.Bool("coverage", false, "collect semantic coverage (served at /coverage)")
	)
	flag.Parse()

	cfg := service.Config{
		MaxConcurrent:    *maxConc,
		QueueDepth:       *queueDepth,
		MaxWorkersPerJob: *maxWorkers,
		MaxStepsCap:      *maxSteps,
		MaxPathsCap:      *maxPaths,
		SolverDeadline:   *solverDL,
		MaxStateTerms:    *maxTerms,
		CacheFile:        *cacheFile,
		CacheMaxEntries:  *cacheMax,
		FlushInterval:    *flushInterval,
		Obs:              obs.New(),
	}
	if *coverage {
		cfg.Cover = cover.New()
	}

	srv, err := service.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "symexd: %v\n", err)
		os.Exit(1)
	}
	httpSrv, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "symexd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("symexd listening on %s", httpSrv.Addr())
	if *cacheFile != "" {
		ps := srv.PersistStats()
		mode := "writer"
		if ps.ReadOnly {
			mode = "read-only follower"
		}
		fmt.Printf(" (cache %s: %d entries loaded, %d corrupt skipped, %s)",
			*cacheFile, ps.Loaded, ps.Corruptions, mode)
	}
	fmt.Println()

	// Graceful shutdown: stop admitting, cancel jobs, flush the cache
	// and release the writer lease before exiting.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("symexd: draining")
	httpSrv.Close()
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "symexd: shutdown: %v\n", err)
		os.Exit(1)
	}
}

// Command disasm disassembles a program image with the ADL-generated
// decoder.
//
// Usage:
//
//	disasm <image.rimg>
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/arch"
	"repro/internal/decoder"
	"repro/internal/prog"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: disasm <image.rimg>")
		os.Exit(2)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p, err := prog.Unmarshal(raw)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	a, err := arch.Load(p.Arch)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	d := decoder.New(a)
	// Invert the symbol table for labels.
	labels := map[uint64][]string{}
	for n, v := range p.Symbols {
		labels[v] = append(labels[v], n)
	}
	for _, seg := range p.Segments {
		fmt.Printf("segment %#x (%d bytes)\n", seg.Addr, len(seg.Data))
		off := 0
		for off < len(seg.Data) {
			addr := seg.Addr + uint64(off)
			for _, l := range labels[addr] {
				fmt.Printf("%s:\n", l)
			}
			dec, err := d.Decode(seg.Data[off:])
			if err != nil {
				fmt.Printf("  %#08x: .byte %#02x\n", addr, seg.Data[off])
				off++
				continue
			}
			fmt.Printf("  %#08x: % -24x %s\n", addr, seg.Data[off:off+dec.Len], decoder.Disasm(dec, addr))
			off += dec.Len
		}
	}
}

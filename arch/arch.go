// Package arch embeds the architecture description files shipped with the
// repository and loads them through the ADL front end.
package arch

import (
	"embed"
	"fmt"
	"sort"
	"strings"

	"repro/internal/adl"
)

//go:embed *.adl
var files embed.FS

// Names returns the embedded architecture names, sorted.
func Names() []string {
	entries, err := files.ReadDir(".")
	if err != nil {
		panic(err) // embedded FS cannot fail to list
	}
	var names []string
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".adl"))
	}
	sort.Strings(names)
	return names
}

// Source returns the ADL source text of the named architecture.
func Source(name string) (string, error) {
	b, err := files.ReadFile(name + ".adl")
	if err != nil {
		return "", fmt.Errorf("arch: no embedded architecture %q (have %v)", name, Names())
	}
	return string(b), nil
}

// Load parses and checks the named embedded architecture.
func Load(name string) (*adl.Arch, error) {
	src, err := Source(name)
	if err != nil {
		return nil, err
	}
	return adl.Load(name+".adl", src)
}

// MustLoad is Load for use in tests and examples; it panics on error.
func MustLoad(name string) *adl.Arch {
	a, err := Load(name)
	if err != nil {
		panic(err)
	}
	return a
}

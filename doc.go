// Package repro is an open-source reproduction of "Architecture
// description language based retargetable symbolic execution" (A. Ibing,
// DATE 2015): a symbolic execution stack — decoder, assembler, concrete
// emulator, RTL semantics, and path-exploring engine with SMT-backed
// security checkers — generated entirely from declarative architecture
// descriptions.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the evaluation. The benchmarks in bench_test.go
// regenerate every table and figure.
package repro

# Tier-1 verification (see ROADMAP.md): build, tests, vet, and the race
# detector over the packages with concurrent machinery.

.PHONY: check build test vet race bench

check: build test vet race

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./internal/core ./internal/smt

bench:
	go test -bench=. -benchmem

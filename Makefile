# Tier-1 verification (see ROADMAP.md): build, tests, vet, the race
# detector over the packages with concurrent machinery, short
# fixed-budget smokes of the fuzz targets and the differential oracle,
# the end-to-end telemetry smoke (docs/observability.md), the
# semantic-coverage gate (docs/coverage.md), the chaos smoke of the
# fault-isolation layer (docs/robustness.md), the compiled-vs-
# interpreted equivalence smoke (docs/compile.md), and the analysis-
# service smoke with its persistent cross-run solver cache
# (docs/service.md), the exploration-profiler smoke against a live
# daemon, the run-ledger regression-gate smoke, the live-progress
# SSE smoke (docs/observability.md), and the kill-9 crash-recovery
# smoke of the durable job journal and exploration checkpoints
# (docs/service.md).

.PHONY: check build test vet race bench fuzz-smoke difftest-smoke difftest obs-smoke cover-smoke chaos-smoke compile-smoke service-smoke profile-smoke ledger-smoke progress-smoke crash-smoke

check: build test vet race fuzz-smoke difftest-smoke obs-smoke cover-smoke chaos-smoke compile-smoke service-smoke profile-smoke ledger-smoke progress-smoke crash-smoke

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./internal/core ./internal/smt ./internal/difftest ./internal/obs ./internal/cover ./internal/faultinject ./internal/rtl ./internal/conc ./internal/service ./internal/profile ./internal/ledger ./internal/wal

bench:
	go test -bench=. -benchmem

# Coverage-guided fuzz targets, a few seconds each (go test allows one
# -fuzz pattern per invocation).
fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzExprCompile -fuzztime=5s ./internal/minic
	go test -run='^$$' -fuzz=FuzzDifferentialTiny32 -fuzztime=5s ./internal/core
	go test -run='^$$' -fuzz=FuzzExprWireRoundTrip -fuzztime=5s ./internal/expr

# Differential oracle (docs/difftest.md): CI smoke with a fixed seed,
# and a longer soak for local use.
difftest-smoke:
	go run ./cmd/difftest -rounds 40 -seed 1

difftest:
	go run ./cmd/difftest -duration 120s -seed 42 -v -corpus difftest-corpus

# End-to-end telemetry smoke (docs/observability.md): a real exploration
# runs with -obs-addr semantics — live /metrics, expvar and a 1s CPU
# profile are fetched over HTTP and validated, and the Chrome trace is
# checked for the per-path lifecycle events.
obs-smoke:
	go test -run 'TestObsSmoke' -count=1 ./internal/obs

# Chaos smoke (docs/robustness.md): a differential run with the fault
# injector armed at every site must finish with zero divergences and
# exact fault accounting, under the race detector.
chaos-smoke:
	go test -race -run 'TestChaosSmoke' -count=1 ./internal/difftest

# Compiled-vs-interpreted smoke (docs/compile.md): a fixed-budget run of
# the oracle's compile layer over every embedded ADL — concrete machine,
# engine replay and full exploration must agree exactly between compiled
# and interpreted execution, including one run under chaos injection.
compile-smoke:
	go test -run 'TestCompileSmoke' -count=1 ./internal/difftest

# Analysis-service smoke (docs/service.md): boot symexd on loopback,
# run the four embedded ADLs' programs concurrently over HTTP with
# results matched against direct library runs, then boot a second
# daemon generation against the persisted solver cache and require a
# nonzero cross-run hit rate on /metrics with zero corruption counters.
service-smoke:
	go test -run 'TestServiceSmoke' -count=1 ./internal/service

# Exploration-profiler smoke (docs/observability.md): boot symexd on
# loopback, run a job, and fetch its per-PC cost profile in all three
# formats — the pprof bytes must parse and attribute solver time.
profile-smoke:
	go test -run 'TestProfileSmoke' -count=1 ./internal/service

# Run-ledger smoke (docs/observability.md): build the symex binary and
# run the same image against the same ledger three times — the clean
# repeat run must gate green, and a -ledger-fake-slowdown run must exit
# 5 naming the regressed metric.
ledger-smoke:
	go test -run 'TestLedgerSmoke' -count=1 ./internal/ledger

# Live-progress smoke (docs/observability.md): boot symexd on loopback
# with a run ledger, stream >= 2 SSE snapshots plus the terminal done
# event during a real job, and require the completed job to appear at
# GET /v1/runs with a green per-config trend.
progress-smoke:
	go test -run 'TestProgressSmoke' -count=1 ./internal/service

# Crash smoke (docs/service.md): build the symexd binary, SIGKILL a
# live daemon mid-job, restart it against the same -state-dir, and
# require the resumed job's canonical report to be bit-identical to an
# uninterrupted daemon's, zero queued jobs lost, and the recovery
# visible at GET /v1/runs.
crash-smoke:
	go test -run 'TestCrashSmoke' -count=1 ./internal/service

# Semantic-coverage gate (docs/coverage.md): a brief coverage-guided
# differential run over every embedded ADL must keep instruction
# coverage in decode, translate and the best execution layer above the
# floor, and the JSON report must roundtrip.
cover-smoke:
	go test -run 'TestCoverSmoke' -count=1 ./internal/cover

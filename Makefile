# Tier-1 verification (see ROADMAP.md): build, tests, vet, the race
# detector over the packages with concurrent machinery, and short
# fixed-budget smokes of the fuzz targets and the differential oracle.

.PHONY: check build test vet race bench fuzz-smoke difftest-smoke difftest

check: build test vet race fuzz-smoke difftest-smoke

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./internal/core ./internal/smt ./internal/difftest

bench:
	go test -bench=. -benchmem

# Coverage-guided fuzz targets, a few seconds each (go test allows one
# -fuzz pattern per invocation).
fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzExprCompile -fuzztime=5s ./internal/minic
	go test -run='^$$' -fuzz=FuzzDifferentialTiny32 -fuzztime=5s ./internal/core

# Differential oracle (docs/difftest.md): CI smoke with a fixed seed,
# and a longer soak for local use.
difftest-smoke:
	go run ./cmd/difftest -rounds 40 -seed 1

difftest:
	go run ./cmd/difftest -duration 120s -seed 42 -v -corpus difftest-corpus

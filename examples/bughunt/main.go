// Bughunt: run the security checkers over an m16 "packet parser" with
// two planted memory-safety bugs and one arithmetic bug, and print each
// finding together with the concrete input packet that triggers it. The
// whole analysis stack — decoder, semantics, emulator — was generated
// from arch/m16.adl (a big-endian, variable-length 16-bit machine).
package main

import (
	"fmt"
	"log"

	"repro/arch"
	"repro/internal/asm"
	"repro/internal/checker"
	"repro/internal/core"
)

// A toy packet parser: reads [type, len, payload...]; type 1 averages
// the payload (dividing by len without a zero check), type 2 copies the
// payload into a fixed 4-byte buffer indexed by len (no bounds check).
const parser = `
buf:	.space 4
_start:
	trap 1            ; g1 = packet type
	mov  g4, g1
	trap 1            ; g1 = length
	mov  g5, g1
	cmpi g4, 1
	beq  average
	cmpi g4, 2
	beq  copy
	trap 0

average:
	trap 1            ; one payload byte stands in for the sum
	div  g1, g5       ; BUG 1: len may be zero
	trap 2
	trap 0

copy:
	trap 1            ; payload byte
	stbx g1, buf(g5)  ; BUG 2: len indexes the 4-byte buffer unchecked
	trap 0
`

func main() {
	a := arch.MustLoad("m16")
	p, err := asm.New(a).Assemble("parser.s", parser)
	if err != nil {
		log.Fatal(err)
	}
	e := core.NewEngine(a, p, core.Options{InputBytes: 3, MaxSteps: 500})
	for _, c := range checker.All() {
		e.AddChecker(c)
	}
	r, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("analyzed %s image (%d bytes): %d paths, %d instructions\n\n",
		a.Name, p.Size(), len(r.Paths), r.Stats.Instructions)
	if len(r.Bugs) == 0 {
		log.Fatal("expected findings, got none")
	}
	fmt.Printf("%d findings:\n", len(r.Bugs))
	for i, b := range r.Bugs {
		fmt.Printf("%2d. [%s] at pc=%#x  %s\n    %s\n    triggering packet: % x\n",
			i+1, b.Check, b.PC, b.Insn, b.Msg, b.Input)
	}

	// Also show that fault paths double as findings: the m16 div
	// instruction faults architecturally on zero divisors.
	for _, path := range r.Paths {
		if path.Status == core.StatusFault {
			fmt.Printf("\nfault path: %q at pc=%#x after %d steps\n",
				path.Fault, path.EndPC, path.Steps)
		}
	}
}

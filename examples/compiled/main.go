// Compiled: the paper's full pipeline in one program. A C-level parser
// with a subtle bug is compiled by the built-in MiniC compiler to THREE
// different instruction sets; each binary is then symbolically executed
// by the engine generated from that ISA's description. The same bug is
// found in every binary, each time with a concrete triggering input —
// demonstrating that the analysis, the toolchain, and the findings all
// retarget together.
package main

import (
	"fmt"
	"log"

	"repro/arch"
	"repro/internal/asm"
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/minic"
)

// A command dispatcher with two classic C bugs: the lookup masks its
// index with 31 although the table has only 8 entries (out-of-bounds
// read), and the ratio command divides by an unchecked argument
// (division by zero).
const source = `
int table[8] = { 2, 3, 5, 7, 11, 13, 17, 19 };

int lookup(int i) {
	return table[i & 31];        // BUG 1: mask is wider than the table
}

void main() {
	int cmd, n;
	cmd = input();
	n = input();
	if (cmd == 1) output(lookup(n));
	if (cmd == 2) output(1000 / n);   // BUG 2: n may be zero
	exit();
}
`

func main() {
	for _, target := range minic.Targets() {
		fmt.Printf("== target %s ==\n", target)
		asmText, err := minic.CompileSource("parser.c", source, target)
		if err != nil {
			log.Fatal(err)
		}
		a := arch.MustLoad(target)
		p, err := asm.New(a).Assemble("parser.s", asmText)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("compiled to %d bytes of %s machine code\n", p.Size(), a.Name)

		e := core.NewEngine(a, p, core.Options{InputBytes: 2, MaxSteps: 4000})
		for _, c := range checker.All() {
			e.AddChecker(c)
		}
		r, err := e.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("explored %d paths (%d instructions, %d solver queries)\n",
			len(r.Paths), r.Stats.Instructions, r.Stats.Solver.Queries)
		if len(r.Bugs) == 0 {
			log.Fatalf("%s: expected findings", target)
		}
		for _, b := range r.Bugs {
			fmt.Printf("  [%s] pc=%#x %q\n      %s\n      triggering input: % x\n",
				b.Check, b.PC, b.Insn, b.Msg, b.Input)
		}
		fmt.Println()
	}
	fmt.Println("the same C-level bugs were found in all three binaries.")
}

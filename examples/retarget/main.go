// Retarget: the whole point of the paper in one file. Define a brand-new
// architecture ("acc8", an 8-register 24-bit-word accumulator machine
// that exists nowhere else) as an inline ADL string, and immediately get
// an assembler, decoder, concrete emulator, and symbolic execution engine
// for it — no engine code written or modified.
package main

import (
	"fmt"
	"log"

	"repro/internal/adl"
	"repro/internal/asm"
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/smt"
)

const acc8 = `
// acc8: invented on the spot for this example.
arch acc8

bits 24
endian big

reg a0 .. a7 : 24
reg pc : 24 [pc]

alias sysarg = a1
alias sysret = a1

space mem : addr 24 cell 8

format R : 24 { op:6, rd:3 reg(a), rs:3 reg(a), pad:12 }
format I : 24 { op:6, rd:3 reg(a), k:15 simm }

insn halt : R(op = 0, rd = 0, rs = 0, pad = 0) "halt" { halt(); }
insn trap : I(op = 1, rd = 0) "trap %k" { trap(zext(k, 24)); }
insn set  : I(op = 2) "set %rd, %k" { rd = sext(k, 24); }
insn add  : R(op = 3) "add %rd, %rs" { rd = rd + rs; }
insn mul  : R(op = 4) "mul %rd, %rs" { rd = rd * rs; }
insn blo  : I(op = 5) "blo %rd, %k" operand k [rel] {
	if (rd <u 100:24) { pc = pc + sext(k, 24); }
}
insn out  : R(op = 6, rd = 0, rs = 0, pad = 0) "out" { trap(2:24); }
`

const program = `
_start:
	trap 1          ; a1 = symbolic input byte
	set a2, 0
	add a2, a1      ; acc8 has no mov: set+add copies
	mul a2, a2      ; a2 = input^2
	blo a2, small
	set a1, 76      ; 'L' for large
	out
	trap 0
small:
	set a1, 83      ; 'S' for small
	out
	trap 0
`

func main() {
	// 1. "Port" the analysis stack: load the 30-line description.
	a, err := adl.Load("acc8.adl", acc8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new architecture ready: %v\n", a)

	// 2. Assemble a program for it.
	p, err := asm.New(a).Assemble("square.s", program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d bytes (3-byte instructions, big endian)\n\n", p.Size())

	// 3. Symbolically execute with checkers — on an ISA that did not
	//    exist a moment ago.
	e := core.NewEngine(a, p, core.Options{InputBytes: 1})
	for _, c := range checker.All() {
		e.AddChecker(c)
	}
	r, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paths explored: %d (%d instructions)\n", len(r.Paths), r.Stats.Instructions)
	for _, path := range r.Paths {
		res, err := e.Solver.Check(path.PathCond...)
		if err != nil || res != smt.Sat {
			continue
		}
		in := e.InputFromModel(e.Solver.Model())
		label := "?"
		if len(path.Output) == 1 {
			label = string(rune(e.Solver.Value(path.Output[0])))
		}
		fmt.Printf("  input % x -> class %s\n", in, label)
	}

	// 4. The engine proves a property of the new ISA's program: inputs
	//    below 10 always classify as small (10*10 = 100 is the boundary).
	for _, path := range r.Paths {
		if len(path.Output) != 1 {
			continue
		}
		isLarge := e.B.Eq(path.Output[0], e.B.Const(8, 'L'))
		inSmallRange := e.B.ULt(e.B.Var(8, "in0"), e.B.Const(8, 10))
		res, err := e.Solver.Check(append(path.PathCond, isLarge, inSmallRange)...)
		if err != nil {
			log.Fatal(err)
		}
		if res == smt.Sat {
			log.Fatalf("property violated: input %v < 10 classified large",
				e.InputFromModel(e.Solver.Model()))
		}
	}
	fmt.Println("\nproperty proved: no input below 10 is classified 'L'")
}

// Crackme: a RISC-V (rv32i) binary checks a 6-character serial with a
// rolling hash and prints '+' only on a match. Symbolic execution finds
// the accepting path; the SMT solver then produces a valid serial — the
// classic "solve the crackme automatically" demo, running on a decoder
// and semantics generated from arch/rv32i.adl.
package main

import (
	"fmt"
	"log"

	"repro/arch"
	"repro/internal/asm"
	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/smt"
)

const serialLen = 6

// The check: h = 7; for each byte c: h = h*31 + c (mod 2^32); accept iff
// h == 0x5ca1ab1e ^ 0x0defaced... that target may be unreachable; instead
// the program compares against the hash of an undisclosed serial baked in
// at build time, so an accepting input certainly exists.
func crackme(targetHash uint32) string {
	return fmt.Sprintf(`
_start:
	addi s1, zero, 7          # h = 7
	addi s2, zero, 0          # i = 0
	addi s3, zero, %d
loop:
	bge  s2, s3, check
	addi a7, zero, 1
	ecall                     # a0 = input byte
	addi t0, zero, 31
	mul  s1, s1, t0
	add  s1, s1, a0
	addi s2, s2, 1
	jal  zero, loop
check:
	lui  t1, hi20(%d)
	addi t1, t1, lo12(%d)
	bne  s1, t1, reject
	addi a0, zero, 43         # '+'
	addi a7, zero, 2
	ecall
reject:
	addi a7, zero, 0
	ecall
`, serialLen, targetHash, targetHash)
}

func hashOf(s string) uint32 {
	h := uint32(7)
	for i := 0; i < len(s); i++ {
		h = h*31 + uint32(s[i])
	}
	return h
}

func main() {
	secret := "z3less" // the serial the author chose; never revealed to the solver
	target := hashOf(secret)
	a := arch.MustLoad("rv32i")
	src := crackme(target)
	p, err := asm.New(a).Assemble("crackme.s", src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("target hash: %#08x (derived from a hidden serial)\n", target)
	e := core.NewEngine(a, p, core.Options{InputBytes: serialLen, MaxSteps: 2000})
	r, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explored %d paths (%d instructions, %d solver queries)\n",
		len(r.Paths), r.Stats.Instructions, r.Stats.Solver.Queries)

	// The accepting path is the one that produced output.
	for _, path := range r.Paths {
		if len(path.Output) == 0 {
			continue
		}
		// Constrain the serial to printable ASCII so the answer is typable.
		cond := path.PathCond
		for i := 0; i < serialLen; i++ {
			in := e.B.Var(8, fmt.Sprintf("in%d", i))
			cond = append(cond,
				e.B.UGe(in, e.B.Const(8, 0x21)),
				e.B.ULe(in, e.B.Const(8, 0x7e)))
		}
		res, err := e.Solver.Check(cond...)
		if err != nil {
			log.Fatal(err)
		}
		if res != smt.Sat {
			// Printable constraint too strong; fall back to raw bytes.
			res, err = e.Solver.Check(path.PathCond...)
			if err != nil || res != smt.Sat {
				log.Fatalf("accepting path became unsat: %v %v", res, err)
			}
		}
		serial := e.InputFromModel(e.Solver.Model())
		fmt.Printf("solved serial: %q (hash %#08x)\n", serial, hashOf(string(serial)))

		// Verify on the concrete emulator.
		m := conc.NewMachine(a)
		m.LoadProgram(p)
		m.Input = serial
		stop := m.Run(100000)
		fmt.Printf("concrete replay: %v, output %q\n", stop, m.Output)
		if string(m.Output) != "+" {
			log.Fatal("replay did not accept the solved serial")
		}
		fmt.Println("crackme solved.")
		return
	}
	log.Fatal("no accepting path found")
}

// Quickstart: assemble a small tiny32 program in-process and explore it
// symbolically. The program reads one input byte and classifies it; the
// engine discovers every class and solves for an input that reaches it.
package main

import (
	"fmt"
	"log"

	"repro/arch"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/smt"
)

const program = `
// Classify one input byte: '0'..'9' -> 'd', 'a'..'z' -> 'l', else '?'.
_start:
	trap 1              // r1 = one symbolic input byte
	li   r2, 48         // '0'
	bltu r1, r2, other
	li   r2, 58         // '9'+1
	bltu r1, r2, digit
	li   r2, 97         // 'a'
	bltu r1, r2, other
	li   r2, 123        // 'z'+1
	bltu r1, r2, letter
other:
	li   r1, 63         // '?'
	trap 2
	trap 0
digit:
	li   r1, 100        // 'd'
	trap 2
	trap 0
letter:
	li   r1, 108        // 'l'
	trap 2
	trap 0
`

func main() {
	// 1. Load the architecture description and assemble the program.
	a := arch.MustLoad("tiny32")
	p, err := asm.New(a).Assemble("classify.s", program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d bytes for %s\n\n", p.Size(), a.Name)

	// 2. Build the engine (decoder and semantics come from the ADL) and
	//    explore all paths.
	e := core.NewEngine(a, p, core.Options{InputBytes: 1})
	r, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explored %d paths with %d instructions and %d solver queries\n\n",
		len(r.Paths), r.Stats.Instructions, r.Stats.Solver.Queries)

	// 3. For every completed path, solve the path condition for a
	//    concrete input and show what the program would print.
	for _, path := range r.Paths {
		res, err := e.Solver.Check(path.PathCond...)
		if err != nil || res != smt.Sat {
			continue
		}
		model := e.Solver.Model()
		input := e.InputFromModel(model)
		var out []byte
		for _, o := range path.Output {
			out = append(out, byte(expr.Eval(o, model)))
		}
		fmt.Printf("path %2d (%-5v): input %q -> output %q\n",
			path.ID, path.Status, input, out)
	}
}

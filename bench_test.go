package repro

// One benchmark per table and figure of the reconstructed evaluation
// (DESIGN.md §3). Run all of them with:
//
//	go test -bench=. -benchmem
//
// Each benchmark both regenerates the experiment's data (printed once,
// under -v via b.Log) and reports the headline quantity as a custom
// metric, so `go test -bench` output doubles as the paper's numbers.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/arch"
	"repro/internal/asm"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/minic"
	"repro/internal/prog"
)

func mustAssemble(b *testing.B, archName, src string) *prog.Program {
	b.Helper()
	p, err := asm.New(arch.MustLoad(archName)).Assemble("bench.s", src)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkTable1Retargeting measures the full retarget cost: parse and
// check an ADL description and construct the engine components from it.
// The custom metrics report description size vs. the hand-written
// baseline.
func BenchmarkTable1Retargeting(b *testing.B) {
	tbl := harness.RunTable1()
	var buf bytes.Buffer
	tbl.Print(&buf)
	b.Log("\n" + buf.String())
	for _, row := range tbl.Rows {
		row := row
		b.Run(row.Arch, func(b *testing.B) {
			src, err := arch.Source(row.Arch)
			if err != nil {
				b.Fatal(err)
			}
			img := &prog.Program{Arch: row.Arch}
			for b.Loop() {
				a, err := arch.Load(row.Arch)
				if err != nil {
					b.Fatal(err)
				}
				core.NewEngine(a, img, core.Options{})
			}
			b.ReportMetric(float64(len(src)), "ADL-bytes")
			b.ReportMetric(float64(row.ADLLines), "ADL-lines")
			b.ReportMetric(float64(tbl.BaselineLoC), "handwritten-LoC")
		})
	}
}

// BenchmarkTable2Detection runs the planted-vulnerability suite and
// reports detection counts as metrics.
func BenchmarkTable2Detection(b *testing.B) {
	var tbl harness.Table2
	for b.Loop() {
		tbl = harness.RunTable2()
	}
	var buf bytes.Buffer
	tbl.Print(&buf)
	b.Log("\n" + buf.String())
	buggy, detected, fixed, falsePos := tbl.Summary()
	b.ReportMetric(float64(buggy), "planted")
	b.ReportMetric(float64(detected), "detected")
	b.ReportMetric(float64(fixed), "fixed-variants")
	b.ReportMetric(float64(falsePos), "false-positives")
}

// BenchmarkTable3Throughput compares symbolic interpretation rates of the
// generated engine against the hand-written baseline on identical tiny32
// programs.
func BenchmarkTable3Throughput(b *testing.B) {
	for _, wl := range []struct {
		name string
		n    int
	}{{"sort", 24}, {"checksum", 400}} {
		src := harness.Throughput(wl.name, wl.n)
		p := mustAssemble(b, "tiny32", src)
		a := arch.MustLoad("tiny32")

		b.Run("generated/"+wl.name, func(b *testing.B) {
			var insns int64
			for b.Loop() {
				e := core.NewEngine(a, p, core.Options{MaxSteps: 1 << 20})
				r, err := e.Run()
				if err != nil {
					b.Fatal(err)
				}
				insns = r.Stats.Instructions
			}
			b.ReportMetric(float64(insns)*float64(b.N)/b.Elapsed().Seconds(), "insns/s")
		})
		b.Run("baseline/"+wl.name, func(b *testing.B) {
			var insns int64
			for b.Loop() {
				e, err := baseline.New(p, baseline.Options{MaxSteps: 1 << 20})
				if err != nil {
					b.Fatal(err)
				}
				r, err := e.Run()
				if err != nil {
					b.Fatal(err)
				}
				insns = r.Stats.Instructions
			}
			b.ReportMetric(float64(insns)*float64(b.N)/b.Elapsed().Seconds(), "insns/s")
		})
	}
}

// BenchmarkFig1PathGrowth measures the path-explosion curve per ISA.
func BenchmarkFig1PathGrowth(b *testing.B) {
	pts := harness.RunFig1(7)
	var buf bytes.Buffer
	harness.PrintFig1(&buf, pts)
	b.Log("\n" + buf.String())
	for _, archName := range harness.Arches {
		for _, k := range []int{4, 6, 8} {
			src := harness.BranchLadder(archName, k)
			p := mustAssemble(b, archName, src)
			a := arch.MustLoad(archName)
			name := archName + "/k=" + string(rune('0'+k))
			b.Run(name, func(b *testing.B) {
				var paths int
				for b.Loop() {
					e := core.NewEngine(a, p, core.Options{InputBytes: k, MaxPaths: 1 << uint(k+1)})
					r, err := e.Run()
					if err != nil {
						b.Fatal(err)
					}
					paths = len(r.Paths)
				}
				b.ReportMetric(float64(paths), "paths")
			})
		}
	}
}

// BenchmarkFig2SolverShare measures the SMT share of analysis time.
func BenchmarkFig2SolverShare(b *testing.B) {
	pts := harness.RunFig2(8)
	var buf bytes.Buffer
	harness.PrintFig2(&buf, pts)
	b.Log("\n" + buf.String())
	for _, k := range []int{4, 8} {
		src := harness.BranchLadder("tiny32", k)
		p := mustAssemble(b, "tiny32", src)
		a := arch.MustLoad("tiny32")
		b.Run("k="+string(rune('0'+k)), func(b *testing.B) {
			var share float64
			var queries int64
			for b.Loop() {
				e := core.NewEngine(a, p, core.Options{InputBytes: k, MaxPaths: 1 << uint(k+1)})
				r, err := e.Run()
				if err != nil {
					b.Fatal(err)
				}
				if r.Stats.WallTime > 0 {
					share = float64(r.Stats.Solver.SolveTime) / float64(r.Stats.WallTime)
				}
				queries = r.Stats.Solver.Queries
			}
			b.ReportMetric(share*100, "solver-%")
			b.ReportMetric(float64(queries), "queries")
		})
	}
}

// BenchmarkFig3Strategies measures time-to-first-bug per search strategy.
func BenchmarkFig3Strategies(b *testing.B) {
	pts := harness.RunFig3([]int{3, 5})
	var buf bytes.Buffer
	harness.PrintFig3(&buf, pts)
	b.Log("\n" + buf.String())
	key := []byte{0x10, 0x17, 0x1e, 0x25, 0x2c}
	src := harness.Needle("tiny32", key)
	p := mustAssemble(b, "tiny32", src)
	a := arch.MustLoad("tiny32")
	for _, s := range []core.Strategy{core.DFS, core.BFS, core.Random, core.Coverage} {
		b.Run(s.String(), func(b *testing.B) {
			var insns int64
			for b.Loop() {
				e := core.NewEngine(a, p, core.Options{
					InputBytes: len(key), Strategy: s, Seed: 42, MaxPaths: 100000,
				})
				r, err := e.Run()
				if err != nil {
					b.Fatal(err)
				}
				insns = r.Stats.Instructions
			}
			b.ReportMetric(float64(insns), "insns-to-exhaust")
		})
	}
}

// BenchmarkFig4SolverScaling measures bit-blasting and solving cost vs.
// operand width per operation.
func BenchmarkFig4SolverScaling(b *testing.B) {
	pts := harness.RunFig4([]uint{8, 16, 32, 64})
	var buf bytes.Buffer
	harness.PrintFig4(&buf, pts)
	b.Log("\n" + buf.String())
	for _, op := range []string{"add", "mul", "udiv"} {
		for _, w := range []uint{8, 32} {
			name := op + "/w" + string(rune('0'+w/10)) + string(rune('0'+w%10))
			b.Run(name, func(b *testing.B) {
				var clauses int
				for b.Loop() {
					res := harness.RunFig4([]uint{w})
					for _, pt := range res {
						if pt.Op == op {
							clauses = pt.Clauses
						}
					}
				}
				b.ReportMetric(float64(clauses), "clauses")
			})
		}
	}
}

// BenchmarkAblations quantifies the design decisions DESIGN.md §5 calls
// out: expression simplification and the translation cache.
func BenchmarkAblations(b *testing.B) {
	src := harness.BranchLadder("tiny32", 6)
	p := mustAssemble(b, "tiny32", src)
	a := arch.MustLoad("tiny32")
	configs := []struct {
		name string
		opts core.Options
	}{
		{"full", core.Options{InputBytes: 6, MaxPaths: 1 << 8}},
		{"no-simplify", core.Options{InputBytes: 6, MaxPaths: 1 << 8, NoSimplify: true}},
		{"no-xlate-cache", core.Options{InputBytes: 6, MaxPaths: 1 << 8, NoTranslationCache: true}},
		{"merge-states", core.Options{InputBytes: 6, MaxPaths: 1 << 8, MergeStates: true}},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			var decodes, queries int64
			var paths int
			for b.Loop() {
				e := core.NewEngine(a, p, cfg.opts)
				r, err := e.Run()
				if err != nil {
					b.Fatal(err)
				}
				decodes = r.Stats.DecodeCalls
				queries = r.Stats.Solver.Queries
				paths = len(r.Paths)
			}
			b.ReportMetric(float64(decodes), "decodes")
			b.ReportMetric(float64(queries), "queries")
			b.ReportMetric(float64(paths), "paths")
		})
	}
}

// BenchmarkTable4ConcolicVsFull compares the two exploration modes.
func BenchmarkTable4ConcolicVsFull(b *testing.B) {
	tbl := harness.RunTable4(6)
	var buf bytes.Buffer
	tbl.Print(&buf)
	b.Log("\n" + buf.String())
	src := harness.BranchLadder("tiny32", 6)
	p := mustAssemble(b, "tiny32", src)
	a := arch.MustLoad("tiny32")
	b.Run("full", func(b *testing.B) {
		for b.Loop() {
			e := core.NewEngine(a, p, core.Options{InputBytes: 6, MaxPaths: 1 << 7})
			if _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("concolic", func(b *testing.B) {
		for b.Loop() {
			e := core.NewEngine(a, p, core.Options{InputBytes: 6, MaxPaths: 1 << 7})
			if _, err := e.Concolic(nil, 1<<7); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable5CompiledBinaries explores MiniC-compiled binaries per
// ISA (the paper's setting: analysis of compiler output).
func BenchmarkTable5CompiledBinaries(b *testing.B) {
	tbl := harness.RunTable5()
	var buf bytes.Buffer
	tbl.Print(&buf)
	b.Log("\n" + buf.String())
	for _, target := range minic.Targets() {
		src, err := minic.CompileSource("classify.c", harness.CWorkloads["classify"], target)
		if err != nil {
			b.Fatal(err)
		}
		p := mustAssemble(b, target, src)
		a := arch.MustLoad(target)
		b.Run(target, func(b *testing.B) {
			var paths int
			for b.Loop() {
				e := core.NewEngine(a, p, core.Options{InputBytes: 2, MaxSteps: 4000})
				r, err := e.Run()
				if err != nil {
					b.Fatal(err)
				}
				paths = len(r.Paths)
			}
			b.ReportMetric(float64(paths), "paths")
		})
	}
}

// BenchmarkParallelExplore compares worker counts on a fork-heavy
// program (the parallel-architecture experiment, docs/engine.md). The
// paths/sec metric is the headline: on multi-core hardware workers=4
// multiplies it; on a single-core host it exposes the coordination
// overhead instead (a few percent).
func BenchmarkParallelExplore(b *testing.B) {
	src := harness.BranchLadder("tiny32", 10)
	p := mustAssemble(b, "tiny32", src)
	a := arch.MustLoad("tiny32")
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var paths int
			var hits, misses int64
			var wall time.Duration
			for b.Loop() {
				e := core.NewEngine(a, p, core.Options{
					InputBytes: 10, MaxPaths: 1 << 11, Workers: workers,
				})
				r, err := e.Run()
				if err != nil {
					b.Fatal(err)
				}
				paths = len(r.Paths)
				hits, misses = r.Stats.Solver.CacheHits, r.Stats.Solver.CacheMisses
				wall += r.Stats.WallTime
			}
			if wall > 0 {
				b.ReportMetric(float64(paths)*float64(b.N)/wall.Seconds(), "paths/s")
			}
			if hits+misses > 0 {
				b.ReportMetric(100*float64(hits)/float64(hits+misses), "cache-hit-%")
			}
			b.ReportMetric(float64(paths), "paths")
		})
	}
}

// BenchmarkQueryCache isolates the solver-query cache on the workload
// where queries genuinely repeat: concolic generational search, which
// re-poses prefix conditions across generations.
func BenchmarkQueryCache(b *testing.B) {
	src := harness.Needle("tiny32", []byte{1, 2, 3})
	p := mustAssemble(b, "tiny32", src)
	a := arch.MustLoad("tiny32")
	for _, cfg := range []struct {
		name    string
		noCache bool
	}{
		{"cache", false},
		{"no-cache", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var hits, misses, queries int64
			for b.Loop() {
				e := core.NewEngine(a, p, core.Options{InputBytes: 6, NoQueryCache: cfg.noCache})
				if _, err := e.Concolic(nil, 64); err != nil {
					b.Fatal(err)
				}
				hits, misses = e.Solver.Stats.CacheHits, e.Solver.Stats.CacheMisses
				queries = e.Solver.Stats.Queries
			}
			b.ReportMetric(float64(queries), "queries")
			if hits+misses > 0 {
				b.ReportMetric(100*float64(hits)/float64(hits+misses), "cache-hit-%")
			}
		})
	}
}
